#include "cluster/cluster.hpp"

#include <algorithm>
#include <utility>

#include "snapshot/snapshot.hpp"
#include "util/error.hpp"

namespace dmsim::cluster {

namespace {
/// Raw column value of an idle node's running_job_ entry.
constexpr std::uint32_t kIdle = NodeId::kInvalid;
}  // namespace

MemoryTier default_memory_tier() {
  return MemoryTier{"pool", kTierReferenceLatencyNs, kTierReferenceBandwidthGbs,
                    TierScope::Rack};
}

ClusterConfig make_cluster_config(int normal_count, MiB normal_mib,
                                  int large_count, MiB large_mib, int cores) {
  DMSIM_ASSERT(normal_count >= 0 && large_count >= 0,
               "node counts must be non-negative");
  DMSIM_ASSERT(normal_count + large_count > 0, "cluster must have nodes");
  ClusterConfig cfg;
  cfg.nodes.reserve(static_cast<std::size_t>(normal_count + large_count));
  for (int i = 0; i < normal_count; ++i) {
    cfg.nodes.push_back(NodeConfig{cores, normal_mib, false});
  }
  for (int i = 0; i < large_count; ++i) {
    cfg.nodes.push_back(NodeConfig{cores, large_mib, true});
  }
  return cfg;
}

Cluster::Cluster(ClusterConfig config) : config_(std::move(config)) {
  DMSIM_ASSERT(!config_.nodes.empty(), "cluster must have at least one node");
  const std::size_t n = config_.nodes.size();
  // Normalize the tier table first: an empty table is the paper's flat
  // single-pool model, one implicit tier at the reference point.
  tiers_ = config_.tiers;
  if (tiers_.empty()) tiers_.push_back(default_memory_tier());
  DMSIM_ASSERT(tiers_.size() <= 255, "at most 255 memory tiers");
  tier_latency_factor_.reserve(tiers_.size());
  tier_bandwidth_factor_.reserve(tiers_.size());
  for (const MemoryTier& t : tiers_) {
    DMSIM_ASSERT(t.latency_ns > 0.0, "tier latency must be positive");
    DMSIM_ASSERT(t.bandwidth_gbs > 0.0, "tier bandwidth must be positive");
    tier_latency_factor_.push_back(t.latency_ns / kTierReferenceLatencyNs);
    tier_bandwidth_factor_.push_back(kTierReferenceBandwidthGbs /
                                     t.bandwidth_gbs);
  }
  tier_order_.resize(tiers_.size());
  for (std::size_t t = 0; t < tiers_.size(); ++t) {
    tier_order_[t] = static_cast<std::uint8_t>(t);
  }
  std::sort(tier_order_.begin(), tier_order_.end(),
            [this](std::uint8_t a, std::uint8_t b) {
              if (tiers_[a].latency_ns != tiers_[b].latency_ns) {
                return tiers_[a].latency_ns < tiers_[b].latency_ns;
              }
              return a < b;
            });
  // Every column and index container is sized up front: the node count is
  // immutable, so nothing on the ledger's hot paths ever reallocates.
  capacity_.reserve(n);
  cores_.reserve(n);
  large_.reserve(n);
  tier_.reserve(n);
  rack_.reserve(n);
  for (const auto& nc : config_.nodes) {
    DMSIM_ASSERT(nc.capacity > 0, "node capacity must be positive");
    DMSIM_ASSERT(nc.cores > 0, "node cores must be positive");
    DMSIM_ASSERT(nc.tier < tiers_.size(), "node tier out of range");
    capacity_.push_back(nc.capacity);
    cores_.push_back(nc.cores);
    large_.push_back(nc.large ? 1 : 0);
    tier_.push_back(nc.tier);
    rack_.push_back(nc.rack);
    total_capacity_ += nc.capacity;
  }
  if (tiered()) {
    tier_free_index_.resize(tiers_.size());
    tier_mem_free_index_.resize(tiers_.size());
    tier_free_mib_.assign(tiers_.size(), 0);
    tier_lent_mib_.assign(tiers_.size(), 0);
  }
  running_job_.assign(n, kIdle);
  local_used_.assign(n, 0);
  lent_.assign(n, 0);
  lender_dirty_flag_.assign(n, 0);
  borrow_slab_.init(n);
  // Exclusive node allocation bounds live slots by the node count.
  slots_.reserve(n);
  job_hosts_.reserve(n);
  rebuild_indexes_bulk();
  nodes_by_capacity_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) nodes_by_capacity_.push_back(NodeId{i});
  std::sort(nodes_by_capacity_.begin(), nodes_by_capacity_.end(),
            [this](NodeId a, NodeId b) {
              const MiB ca = capacity_[a.get()];
              const MiB cb = capacity_[b.get()];
              if (ca != cb) return ca < cb;
              return a < b;
            });
  capacities_sorted_.reserve(n);
  for (NodeId id : nodes_by_capacity_) {
    capacities_sorted_.push_back(capacity_[id.get()]);
  }
}

void Cluster::add_nodes(std::span<const NodeConfig> new_nodes) {
  if (new_nodes.empty()) return;
  const std::size_t n = capacity_.size() + new_nodes.size();
  DMSIM_ASSERT(n <= NodeId::kInvalid, "node count overflows NodeId");
  for (const NodeConfig& nc : new_nodes) {
    DMSIM_ASSERT(nc.capacity > 0, "node capacity must be positive");
    DMSIM_ASSERT(nc.cores > 0, "node cores must be positive");
    DMSIM_ASSERT(nc.tier < tiers_.size(), "node tier out of range");
    config_.nodes.push_back(nc);
    capacity_.push_back(nc.capacity);
    cores_.push_back(nc.cores);
    large_.push_back(nc.large ? 1 : 0);
    tier_.push_back(nc.tier);
    rack_.push_back(nc.rack);
    running_job_.push_back(kIdle);
    local_used_.push_back(0);
    lent_.push_back(0);
    lender_dirty_flag_.push_back(0);
    total_capacity_ += nc.capacity;
  }
  borrow_slab_.grow(n);
  // The bulk pass resizes free_/mem_node_/index_bits_ and re-derives every
  // ordered index and per-tier total from the columns.
  rebuild_indexes_bulk();
  nodes_by_capacity_.clear();
  nodes_by_capacity_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) nodes_by_capacity_.push_back(NodeId{i});
  std::sort(nodes_by_capacity_.begin(), nodes_by_capacity_.end(),
            [this](NodeId a, NodeId b) {
              const MiB ca = capacity_[a.get()];
              const MiB cb = capacity_[b.get()];
              if (ca != cb) return ca < cb;
              return a < b;
            });
  capacities_sorted_.clear();
  capacities_sorted_.reserve(n);
  for (NodeId id : nodes_by_capacity_) {
    capacities_sorted_.push_back(capacity_[id.get()]);
  }
  ++change_epoch_;
}

void Cluster::set_observer(const obs::Observer* observer) {
  obs_ = observer;
  c_lend_ops_ = obs::counter_handle(observer, "ledger.lend_ops");
  c_lent_mib_ = obs::counter_handle(observer, "ledger.lent_mib_total");
  c_reclaim_ops_ = obs::counter_handle(observer, "ledger.reclaim_ops");
  c_reclaimed_mib_ = obs::counter_handle(observer, "ledger.reclaimed_mib_total");
  c_local_grow_mib_ = obs::counter_handle(observer, "ledger.local_grow_mib_total");
  c_local_shrink_mib_ =
      obs::counter_handle(observer, "ledger.local_shrink_mib_total");
  g_lent_ = obs::gauge_handle(observer, "ledger.lent_mib");
  g_allocated_ = obs::gauge_handle(observer, "ledger.allocated_mib");
  s_lend_mib_ = obs::series_handle(observer, "ledger.lend_mib");
  s_reclaim_mib_ = obs::series_handle(observer, "ledger.reclaim_mib");
  s_edge_churn_ = obs::series_handle(observer, "ledger.edge_churn");
  h_lenders_per_grow_ = obs::histogram_handle(observer, "ledger.lenders_per_grow");
  // Per-tier occupancy gauges exist only on tiered topologies, keeping the
  // flat model's exported instrument set (and its goldens) unchanged.
  g_tier_lent_.clear();
  if (tiered()) {
    g_tier_lent_.reserve(tiers_.size());
    for (std::size_t t = 0; t < tiers_.size(); ++t) {
      g_tier_lent_.push_back(obs::gauge_handle(
          observer, "ledger.tier_occupancy." + std::to_string(t)));
    }
  }
}

void Cluster::publish_tier_gauges() {
  for (std::size_t t = 0; t < g_tier_lent_.size(); ++t) {
    if (g_tier_lent_[t]) g_tier_lent_[t]->set(tier_lent_mib_[t]);
  }
}

std::uint32_t Cluster::checked(NodeId id) const {
  DMSIM_ASSERT(id.valid() && id.get() < capacity_.size(),
               "node id out of range");
  return id.get();
}

Node Cluster::node(NodeId id) const {
  const std::uint32_t i = checked(id);
  Node n;
  n.id = id;
  n.cores = cores_[i];
  n.capacity = capacity_[i];
  n.large = large_[i] != 0;
  n.running_job = JobId{running_job_[i]};
  n.local_used = local_used_[i];
  n.lent = lent_[i];
  return n;
}

std::vector<Node> Cluster::materialize_nodes() const {
  std::vector<Node> out;
  out.reserve(node_count());
  for (std::uint32_t i = 0; i < node_count(); ++i) {
    out.push_back(node(NodeId{i}));
  }
  return out;
}

std::span<const NodeId> Cluster::nodes_by_capacity_at_least(
    MiB capacity) const noexcept {
  const auto it = std::lower_bound(capacities_sorted_.begin(),
                                   capacities_sorted_.end(), capacity);
  const auto offset =
      static_cast<std::size_t>(it - capacities_sorted_.begin());
  return std::span<const NodeId>(nodes_by_capacity_).subspan(offset);
}

// ---------------------------------------------------------------------------
// Index maintenance
// ---------------------------------------------------------------------------

void Cluster::reindex_node(std::uint32_t i) {
  // The old index key is the free_ column entry (what the node was last
  // indexed under); the new one is re-derived from the occupancy columns.
  const MiB old_free = free_[i];
  const std::uint8_t old_bits = index_bits_[i];
  const MiB free = capacity_[i] - local_used_[i] - lent_[i];
  const bool mem = lent_[i] * 2 > capacity_[i];
  const bool host = running_job_[i] == kIdle && !mem;
  const bool lendable = free > 0;
  const bool mem_free = mem && lendable;
  const FreeKey old_key{old_free, i};
  const FreeKey new_key{free, i};
  const bool moved = old_free != free;
  if ((old_bits & kInHost) && (!host || moved)) host_index_.erase(old_key);
  if (host && (!(old_bits & kInHost) || moved)) host_index_.insert(new_key);
  if ((old_bits & kInFree) && (!lendable || moved)) free_index_.erase(old_key);
  if (lendable && (!(old_bits & kInFree) || moved)) free_index_.insert(new_key);
  if ((old_bits & kInMemFree) && (!mem_free || moved)) {
    mem_free_index_.erase(old_key);
  }
  if (mem_free && (!(old_bits & kInMemFree) || moved)) {
    mem_free_index_.insert(new_key);
  }
  if (tiered()) {
    // The per-tier variants share the membership bits (tier is immutable),
    // so the same erase/insert conditions apply to the node's tier indexes.
    const std::uint8_t t = tier_[i];
    FreeIndex& tf = tier_free_index_[t];
    FreeIndex& tmf = tier_mem_free_index_[t];
    if ((old_bits & kInFree) && (!lendable || moved)) tf.erase(old_key);
    if (lendable && (!(old_bits & kInFree) || moved)) tf.insert(new_key);
    if ((old_bits & kInMemFree) && (!mem_free || moved)) tmf.erase(old_key);
    if (mem_free && (!(old_bits & kInMemFree) || moved)) tmf.insert(new_key);
    tier_free_mib_[t] += free - old_free;
  }
  free_[i] = free;
  mem_node_[i] = mem ? 1 : 0;
  index_bits_[i] = static_cast<std::uint8_t>((host ? kInHost : 0) |
                                             (lendable ? kInFree : 0) |
                                             (mem_free ? kInMemFree : 0));
}

void Cluster::rebuild_indexes_bulk() {
  const std::size_t n = capacity_.size();
  free_.resize(n);
  mem_node_.resize(n);
  index_bits_.resize(n);
  // One linear pass derives every column and gathers each index's keys into
  // a flat vector; sorting those and range-constructing the sets builds each
  // tree with O(size) comparisons (sorted-range guarantee) instead of n
  // individual O(log n) inserts.
  std::vector<FreeKey> host_keys;
  std::vector<FreeKey> free_keys;
  std::vector<FreeKey> mem_keys;
  host_keys.reserve(n);
  free_keys.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const MiB free = capacity_[i] - local_used_[i] - lent_[i];
    const bool mem = lent_[i] * 2 > capacity_[i];
    const bool host = running_job_[i] == kIdle && !mem;
    const bool lendable = free > 0;
    const bool mem_free = mem && lendable;
    free_[i] = free;
    mem_node_[i] = mem ? 1 : 0;
    index_bits_[i] = static_cast<std::uint8_t>((host ? kInHost : 0) |
                                               (lendable ? kInFree : 0) |
                                               (mem_free ? kInMemFree : 0));
    if (host) host_keys.emplace_back(free, i);
    if (lendable) free_keys.emplace_back(free, i);
    if (mem_free) mem_keys.emplace_back(free, i);
  }
  std::sort(host_keys.begin(), host_keys.end());
  std::sort(free_keys.begin(), free_keys.end());
  std::sort(mem_keys.begin(), mem_keys.end());
  host_index_ = FreeIndex(host_keys.begin(), host_keys.end());
  free_index_ = FreeIndex(free_keys.begin(), free_keys.end());
  mem_free_index_ = FreeIndex(mem_keys.begin(), mem_keys.end());
  if (tiered()) {
    // Bucket the already-sorted global keys per tier (filtering preserves
    // order, so each per-tier set also range-constructs linearly), and
    // re-derive the per-tier free/lent totals from the columns.
    const std::size_t tc = tiers_.size();
    std::vector<std::vector<FreeKey>> tf(tc);
    std::vector<std::vector<FreeKey>> tmf(tc);
    for (const FreeKey& k : free_keys) tf[tier_[k.second]].push_back(k);
    for (const FreeKey& k : mem_keys) tmf[tier_[k.second]].push_back(k);
    tier_free_mib_.assign(tc, 0);
    tier_lent_mib_.assign(tc, 0);
    for (std::uint32_t i = 0; i < n; ++i) {
      tier_free_mib_[tier_[i]] += free_[i];
      tier_lent_mib_[tier_[i]] += lent_[i];
    }
    for (std::size_t t = 0; t < tc; ++t) {
      tier_free_index_[t] = FreeIndex(tf[t].begin(), tf[t].end());
      tier_mem_free_index_[t] = FreeIndex(tmf[t].begin(), tmf[t].end());
    }
  }
}

void Cluster::mark_lender_dirty(NodeId id) {
  std::uint8_t& flag = lender_dirty_flag_[id.get()];
  if (flag == 0) {
    flag = 1;
    dirty_lenders_.push_back(id);
  }
}

void Cluster::mark_slot_dirty(const AllocationSlot& slot) {
  mark_job_dirty(slot.job);
  for (const auto& [lender, amount] : slot.remote) {
    (void)amount;
    mark_lender_dirty(lender);
  }
}

void Cluster::clear_contention_dirty() {
  for (const NodeId id : dirty_lenders_) lender_dirty_flag_[id.get()] = 0;
  dirty_lenders_.clear();
  dirty_jobs_.clear();
}

// ---------------------------------------------------------------------------
// Job placement
// ---------------------------------------------------------------------------

void Cluster::assign_job(JobId job, std::span<const NodeId> hosts) {
  DMSIM_ASSERT(job.valid(), "cannot assign an invalid job");
  DMSIM_ASSERT(!hosts.empty(), "job needs at least one host");
  DMSIM_ASSERT(!job_hosts_.contains(job.get()), "job already assigned");
  for (NodeId h : hosts) {
    DMSIM_ASSERT(can_host(h), "host is busy or a memory node");
  }
  std::vector<NodeId> host_list(hosts.begin(), hosts.end());
  for (NodeId h : host_list) {
    running_job_[h.get()] = job.get();
    reindex_node(h.get());
    AllocationSlot slot;
    slot.job = job;
    slot.host = h;
    const auto [it, inserted] = slots_.emplace(key(job, h), std::move(slot));
    DMSIM_ASSERT(inserted, "duplicate host in job assignment");
    (void)it;
  }
  job_hosts_.emplace(job.get(), std::move(host_list));
  ++change_epoch_;
}

void Cluster::finish_job(JobId job) {
  const auto hit = job_hosts_.find(job.get());
  DMSIM_ASSERT(hit != job_hosts_.end(), "finishing a job that is not assigned");
  for (NodeId h : hit->second) {
    const auto sit = slots_.find(key(job, h));
    DMSIM_ASSERT(sit != slots_.end(), "missing slot for assigned host");
    AllocationSlot& slot = sit->second;
    // Return all borrows.
    for (const auto& [lender, amount] : slot.remote) {
      const std::uint32_t l = lender.get();
      DMSIM_ASSERT(lent_[l] >= amount, "lender under-ledgered");
      lent_[l] -= amount;
      total_allocated_ -= amount;
      total_lent_ -= amount;
      if (tiered()) tier_lent_mib_[tier_[l]] -= amount;
      reindex_node(l);
      mark_lender_dirty(lender);
      const bool removed = borrow_slab_.remove(l, sit->first.packed);
      DMSIM_ASSERT(removed, "borrow edge missing from reverse slab");
    }
    // Release local share and the host itself.
    const std::uint32_t hi = h.get();
    DMSIM_ASSERT(local_used_[hi] >= slot.local, "host under-ledgered");
    local_used_[hi] -= slot.local;
    total_allocated_ -= slot.local;
    DMSIM_ASSERT(running_job_[hi] == job.get(), "host running a different job");
    running_job_[hi] = kIdle;
    reindex_node(hi);
    slots_.erase(sit);
  }
  job_hosts_.erase(hit);
  ++change_epoch_;
  // The scheduler emits the job's terminal event; here only the aggregate
  // gauges move (all of the job's local + borrowed memory was returned).
  if (g_lent_) g_lent_->set(total_lent_);
  if (g_allocated_) g_allocated_->set(total_allocated_);
  publish_tier_gauges();
}

// ---------------------------------------------------------------------------
// Memory operations
// ---------------------------------------------------------------------------

MiB Cluster::grow_local(JobId job, NodeId host, MiB amount) {
  DMSIM_ASSERT(amount >= 0, "grow_local amount must be non-negative");
  AllocationSlot& slot = slot_mut(job, host);
  const std::uint32_t h = host.get();
  const MiB granted = std::min(amount, free_[h]);
  slot.local += granted;
  local_used_[h] += granted;
  total_allocated_ += granted;
  if (granted > 0) {
    reindex_node(h);
    ++change_epoch_;
    // Remote-borrowing slots see their amount/total pressure ratios shift.
    if (!slot.remote.empty()) mark_slot_dirty(slot);
    obs::bump(c_local_grow_mib_, static_cast<std::uint64_t>(granted));
    if (g_allocated_) g_allocated_->set(total_allocated_);
    if (obs::tracing(obs_)) {
      obs_->sink->emit(obs::Event{obs::EventKind::SlotGrow, obs_->now(),
                                  job.get(), host.get()}
                           .with("mib", granted));
    }
  }
  return granted;
}

MiB Cluster::shrink_local(JobId job, NodeId host, MiB amount) {
  DMSIM_ASSERT(amount >= 0, "shrink_local amount must be non-negative");
  AllocationSlot& slot = slot_mut(job, host);
  const std::uint32_t h = host.get();
  const MiB released = std::min(amount, slot.local);
  slot.local -= released;
  local_used_[h] -= released;
  total_allocated_ -= released;
  if (released > 0) {
    reindex_node(h);
    ++change_epoch_;
    if (!slot.remote.empty()) mark_slot_dirty(slot);
    obs::bump(c_local_shrink_mib_, static_cast<std::uint64_t>(released));
    if (g_allocated_) g_allocated_->set(total_allocated_);
    if (obs::tracing(obs_)) {
      obs_->sink->emit(obs::Event{obs::EventKind::SlotShrink, obs_->now(),
                                  job.get(), host.get()}
                           .with("mib", released));
    }
  }
  return released;
}

NodeId Cluster::next_lender(NodeId exclude) const {
  if (tiered()) {
    // Nearest tier with free capacity first, spilling outward: each leg is
    // one O(log n) probe of that tier's index pair.
    for (const std::uint8_t t : tier_order_) {
      const NodeId pick = next_lender_in_tier(t, exclude);
      if (pick.valid()) return pick;
    }
    return NodeId{};
  }
  // First admissible key in visit_desc order — the same (free desc, id asc)
  // walk the materialized ordering used, stopped at the first hit.
  const auto first_desc = [exclude](const FreeIndex& index,
                                    auto&& admit) -> NodeId {
    NodeId found{};
    visit_desc(index, index.end(), [&](const FreeKey& k) {
      if (k.second == exclude.get() || !admit(k)) return true;
      found = NodeId{k.second};
      return false;
    });
    return found;
  };
  const auto any = [](const FreeKey&) { return true; };
  switch (config_.lender_policy) {
    case LenderPolicy::MostFree:
      return first_desc(free_index_, any);
    case LenderPolicy::LeastFree:
      for (const FreeKey& k : free_index_) {
        if (k.second != exclude.get()) return NodeId{k.second};
      }
      return NodeId{};
    case LenderPolicy::MemoryNodesFirst: {
      // Memory nodes (free desc, id asc) before the rest in the same order —
      // the old sort's partition under its memory-nodes-first comparator.
      const NodeId mem = first_desc(mem_free_index_, any);
      if (mem.valid()) return mem;
      return first_desc(free_index_, [this](const FreeKey& k) {
        return mem_node_[k.second] == 0;
      });
    }
  }
  return NodeId{};
}

NodeId Cluster::next_lender_in_tier(std::uint8_t t, NodeId exclude) const {
  // The configured policy's ranking, restricted to one tier's index pair.
  const FreeIndex& tier_free = tier_free_index_[t];
  const auto first_desc = [exclude](const FreeIndex& index,
                                    auto&& admit) -> NodeId {
    NodeId found{};
    visit_desc(index, index.end(), [&](const FreeKey& k) {
      if (k.second == exclude.get() || !admit(k)) return true;
      found = NodeId{k.second};
      return false;
    });
    return found;
  };
  const auto any = [](const FreeKey&) { return true; };
  switch (config_.lender_policy) {
    case LenderPolicy::MostFree:
      return first_desc(tier_free, any);
    case LenderPolicy::LeastFree:
      for (const FreeKey& k : tier_free) {
        if (k.second != exclude.get()) return NodeId{k.second};
      }
      return NodeId{};
    case LenderPolicy::MemoryNodesFirst: {
      const NodeId mem = first_desc(tier_mem_free_index_[t], any);
      if (mem.valid()) return mem;
      return first_desc(tier_free, [this](const FreeKey& k) {
        return mem_node_[k.second] == 0;
      });
    }
  }
  return NodeId{};
}

MiB Cluster::grow_remote(JobId job, NodeId host, MiB amount) {
  DMSIM_ASSERT(amount >= 0, "grow_remote amount must be non-negative");
  if (amount == 0) return 0;
  AllocationSlot& slot = slot_mut(job, host);
  MiB remaining = amount;
  int lenders_touched = 0;
  std::int64_t edges_added = 0;
  // Lenders are picked one at a time straight from the indexes. Each pick is
  // either drained to free() == 0 — leaving every index before the next
  // lookup — or the grow is satisfied and the loop ends, so the sequence of
  // picks is identical to ranking all lenders by their state at the start of
  // the grow (the historical snapshot semantics), including memory-node
  // status flips: a flipped node has free() == 0 and is out of both indexes.
  while (remaining > 0) {
    const NodeId lender = next_lender(host);
    if (!lender.valid()) break;
    const std::uint32_t l = lender.get();
    const MiB take = std::min(remaining, free_[l]);
    DMSIM_ASSERT(take > 0, "free-index lender must have free memory");
    lent_[l] += take;
    total_allocated_ += take;
    total_lent_ += take;
    if (tiered()) tier_lent_mib_[tier_[l]] += take;
    remaining -= take;
    ++lenders_touched;
    reindex_node(l);
    // Merge into an existing edge if present.
    auto edge = std::find_if(slot.remote.begin(), slot.remote.end(),
                             [lender](const auto& e) { return e.first == lender; });
    if (edge != slot.remote.end()) {
      edge->second += take;
    } else {
      slot.remote.emplace_back(lender, take);
      borrow_slab_.add(l, key(job, host).packed);
      ++edges_added;
    }
  }
  const MiB granted = amount - remaining;
  if (granted > 0) {
    ++change_epoch_;
    // The slot's total moved too, so every edge's pressure ratio changed.
    mark_slot_dirty(slot);
    obs::bump(c_lend_ops_);
    obs::bump(c_lent_mib_, static_cast<std::uint64_t>(granted));
    obs::record(h_lenders_per_grow_, lenders_touched);
    if (obs_ != nullptr) {
      const Seconds now = obs_->now();
      obs::record(s_lend_mib_, now, granted);
      if (edges_added > 0) obs::record(s_edge_churn_, now, edges_added);
    }
    if (g_lent_) g_lent_->set(total_lent_);
    if (g_allocated_) g_allocated_->set(total_allocated_);
    publish_tier_gauges();
    if (obs::tracing(obs_)) {
      obs_->sink->emit(obs::Event{obs::EventKind::MemLend, obs_->now(),
                                  job.get(), host.get()}
                           .with("mib", granted)
                           .with("lent_total", total_lent_));
    }
  }
  return granted;
}

MiB Cluster::shrink_remote(JobId job, NodeId host, MiB amount) {
  DMSIM_ASSERT(amount >= 0, "shrink_remote amount must be non-negative");
  AllocationSlot& slot = slot_mut(job, host);
  MiB remaining = std::min(amount, slot.remote_total());
  const MiB released = remaining;
  std::int64_t edges_removed = 0;
  // Return the largest borrows first: frees memory-node status soonest.
  std::sort(slot.remote.begin(), slot.remote.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  for (auto& [lender, borrowed] : slot.remote) {
    if (remaining == 0) break;
    const MiB give = std::min(remaining, borrowed);
    const std::uint32_t l = lender.get();
    DMSIM_ASSERT(lent_[l] >= give, "lender under-ledgered on shrink");
    lent_[l] -= give;
    total_allocated_ -= give;
    total_lent_ -= give;
    if (tiered()) tier_lent_mib_[tier_[l]] -= give;
    borrowed -= give;
    remaining -= give;
    reindex_node(l);
    // Mark here, not via mark_slot_dirty below: a fully-returned edge is
    // erased from the slot before that call, yet its lender's pressure
    // still changed.
    mark_lender_dirty(lender);
    if (borrowed == 0) {
      const bool removed = borrow_slab_.remove(l, key(job, host).packed);
      DMSIM_ASSERT(removed, "borrow edge missing from reverse slab");
      ++edges_removed;
    }
  }
  std::erase_if(slot.remote, [](const auto& e) { return e.second == 0; });
  if (released > 0) {
    ++change_epoch_;
    mark_slot_dirty(slot);
    obs::bump(c_reclaim_ops_);
    obs::bump(c_reclaimed_mib_, static_cast<std::uint64_t>(released));
    if (obs_ != nullptr) {
      const Seconds now = obs_->now();
      obs::record(s_reclaim_mib_, now, released);
      if (edges_removed > 0) obs::record(s_edge_churn_, now, edges_removed);
    }
    if (g_lent_) g_lent_->set(total_lent_);
    if (g_allocated_) g_allocated_->set(total_allocated_);
    publish_tier_gauges();
    if (obs::tracing(obs_)) {
      obs_->sink->emit(obs::Event{obs::EventKind::MemReclaim, obs_->now(),
                                  job.get(), host.get()}
                           .with("mib", released)
                           .with("lent_total", total_lent_));
    }
  }
  return released;
}

MiB Cluster::shrink_remote_edge(JobId job, NodeId host, NodeId lender,
                                MiB amount) {
  DMSIM_ASSERT(amount >= 0, "shrink_remote_edge amount must be non-negative");
  AllocationSlot& slot = slot_mut(job, host);
  const auto edge =
      std::find_if(slot.remote.begin(), slot.remote.end(),
                   [lender](const auto& e) { return e.first == lender; });
  if (edge == slot.remote.end() || amount == 0) return 0;
  const MiB give = std::min(amount, edge->second);
  const std::uint32_t l = lender.get();
  DMSIM_ASSERT(lent_[l] >= give, "lender under-ledgered on edge shrink");
  lent_[l] -= give;
  total_allocated_ -= give;
  total_lent_ -= give;
  if (tiered()) tier_lent_mib_[tier_[l]] -= give;
  edge->second -= give;
  reindex_node(l);
  mark_lender_dirty(lender);
  std::int64_t edges_removed = 0;
  if (edge->second == 0) {
    const bool removed = borrow_slab_.remove(l, key(job, host).packed);
    DMSIM_ASSERT(removed, "borrow edge missing from reverse slab");
    slot.remote.erase(edge);
    edges_removed = 1;
  }
  ++change_epoch_;
  mark_slot_dirty(slot);
  obs::bump(c_reclaim_ops_);
  obs::bump(c_reclaimed_mib_, static_cast<std::uint64_t>(give));
  if (obs_ != nullptr) {
    const Seconds now = obs_->now();
    obs::record(s_reclaim_mib_, now, give);
    if (edges_removed > 0) obs::record(s_edge_churn_, now, edges_removed);
  }
  if (g_lent_) g_lent_->set(total_lent_);
  if (g_allocated_) g_allocated_->set(total_allocated_);
  publish_tier_gauges();
  if (obs::tracing(obs_)) {
    obs_->sink->emit(obs::Event{obs::EventKind::MemReclaim, obs_->now(),
                                job.get(), host.get()}
                         .with("mib", give)
                         .with("lent_total", total_lent_));
  }
  return give;
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

const AllocationSlot& Cluster::slot(JobId job, NodeId host) const {
  const auto it = slots_.find(key(job, host));
  DMSIM_ASSERT(it != slots_.end(), "no allocation slot for (job, host)");
  return it->second;
}

bool Cluster::has_slot(JobId job, NodeId host) const {
  return slots_.contains(key(job, host));
}

AllocationSlot& Cluster::slot_mut(JobId job, NodeId host) {
  const auto it = slots_.find(key(job, host));
  DMSIM_ASSERT(it != slots_.end(), "no allocation slot for (job, host)");
  return it->second;
}

std::span<const NodeId> Cluster::hosts_of(JobId job) const {
  const auto hit = job_hosts_.find(job.get());
  if (hit == job_hosts_.end()) return {};
  return hit->second;
}

std::vector<const AllocationSlot*> Cluster::job_slots(JobId job) const {
  std::vector<const AllocationSlot*> out;
  const auto hit = job_hosts_.find(job.get());
  if (hit == job_hosts_.end()) return out;
  out.reserve(hit->second.size());
  for (NodeId h : hit->second) out.push_back(&slot(job, h));
  return out;
}

void Cluster::borrowers_of(NodeId lender,
                           std::vector<BorrowEdge>& out) const {
  const std::size_t first = out.size();
  borrow_slab_.for_each(checked(lender), [&](std::uint64_t packed) {
    const auto it = slots_.find(SlotKey{packed});
    DMSIM_ASSERT(it != slots_.end(), "reverse index points at a dead slot");
    const AllocationSlot& slot = it->second;
    for (const auto& [from, amount] : slot.remote) {
      if (from == lender) {
        DMSIM_ASSERT(amount > 0, "reverse index holds a zero edge");
        out.push_back(
            BorrowEdge{slot.job, slot.host, amount, tier_[lender.get()]});
        break;  // edges are merged: at most one per lender
      }
    }
  });
  // Canonical order: borrower job id ascending, then the host's position in
  // the job's assignment. This matches a job-id-ordered walk of each job's
  // slots, which the incremental contention refresh relies on for
  // reproducible pressure summation.
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end(),
            [this](const BorrowEdge& a, const BorrowEdge& b) {
              if (a.job != b.job) return a.job < b.job;
              const std::span<const NodeId> hosts = hosts_of(a.job);
              const auto pos = [&hosts](NodeId h) {
                return std::find(hosts.begin(), hosts.end(), h) - hosts.begin();
              };
              return pos(a.host) < pos(b.host);
            });
}

std::vector<Cluster::BorrowEdge> Cluster::borrowers_of(NodeId lender) const {
  std::vector<BorrowEdge> out;
  borrowers_of(lender, out);
  return out;
}

// ---------------------------------------------------------------------------
// Invariants
// ---------------------------------------------------------------------------

void Cluster::check_invariants() const {
  const std::size_t n = node_count();
  std::vector<MiB> local(n, 0);
  std::vector<MiB> lent(n, 0);
  // Every (lender, slot-key) borrow pair implied by the slots, to compare
  // against the reverse slab wholesale (sort + one linear scan) instead of
  // probing the slab once per edge.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> expected_edges;
  MiB allocated = 0;
  for (const auto& [k, slot] : slots_) {
    (void)k;
    DMSIM_ASSERT(slot.local >= 0, "negative local share");
    local[slot.host.get()] += slot.local;
    allocated += slot.local;
    for (const auto& [lender, amount] : slot.remote) {
      DMSIM_ASSERT(amount > 0, "zero/negative borrow edge left in ledger");
      DMSIM_ASSERT(lender != slot.host, "self-borrow edge");
      lent[lender.get()] += amount;
      allocated += amount;
      expected_edges.emplace_back(lender.get(),
                                  key(slot.job, slot.host).packed);
    }
    DMSIM_ASSERT(running_job_[slot.host.get()] == slot.job.get(),
                 "slot host not running the slot's job");
  }
  // Reverse slab must hold exactly the implied edge set (each edge once).
  std::vector<std::pair<std::uint32_t, std::uint64_t>> actual_edges;
  actual_edges.reserve(expected_edges.size());
  for (std::uint32_t l = 0; l < n; ++l) {
    std::size_t row = 0;
    borrow_slab_.for_each(l, [&](std::uint64_t packed) {
      actual_edges.emplace_back(l, packed);
      ++row;
    });
    DMSIM_ASSERT(row == borrow_slab_.degree[l],
                 "reverse slab degree disagrees with its row");
  }
  std::sort(expected_edges.begin(), expected_edges.end());
  std::sort(actual_edges.begin(), actual_edges.end());
  DMSIM_ASSERT(expected_edges == actual_edges,
               "reverse slab disagrees with live borrow edges");
  DMSIM_ASSERT(borrow_slab_.live == expected_edges.size(),
               "reverse slab live count out of sync");

  // One cache-linear pass over the columns: occupancy sums, bounds, and the
  // derived free/memory-node/membership columns.
  std::size_t host_entries = 0;
  std::size_t free_entries = 0;
  std::size_t mem_free_entries = 0;
  MiB lent_total = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    DMSIM_ASSERT(local_used_[i] == local[i],
                 "node local_used disagrees with slots");
    DMSIM_ASSERT(lent_[i] == lent[i], "node lent disagrees with edges");
    DMSIM_ASSERT(local_used_[i] + lent_[i] <= capacity_[i],
                 "node over-committed");
    DMSIM_ASSERT(local_used_[i] >= 0 && lent_[i] >= 0,
                 "negative ledger entry");
    const MiB free = capacity_[i] - local_used_[i] - lent_[i];
    const bool mem = lent_[i] * 2 > capacity_[i];
    const bool host = running_job_[i] == kIdle && !mem;
    const bool lendable = free > 0;
    const bool mem_free = mem && lendable;
    DMSIM_ASSERT(free_[i] == free, "free column out of date");
    DMSIM_ASSERT((mem_node_[i] != 0) == mem, "memory-node column out of date");
    const std::uint8_t bits = static_cast<std::uint8_t>(
        (host ? kInHost : 0) | (lendable ? kInFree : 0) |
        (mem_free ? kInMemFree : 0));
    DMSIM_ASSERT(index_bits_[i] == bits,
                 "index membership bits disagree with node state");
    host_entries += host ? 1 : 0;
    free_entries += lendable ? 1 : 0;
    mem_free_entries += mem_free ? 1 : 0;
    lent_total += lent_[i];
  }
  // Each ordered index: every entry it holds must be a node whose membership
  // bit is set, keyed by that node's current free value; together with the
  // per-node bit counts matching the set sizes, this proves membership is
  // exact (no per-node tree probes needed).
  const auto check_index = [&](const FreeIndex& index, std::uint8_t bit,
                               std::size_t expected,
                               const char* what) {
    DMSIM_ASSERT(index.size() == expected, what);
    for (const FreeKey& k : index) {
      DMSIM_ASSERT(k.second < n && (index_bits_[k.second] & bit) != 0 &&
                       free_[k.second] == k.first,
                   what);
    }
  };
  check_index(host_index_, kInHost, host_entries,
              "host index disagrees with node state");
  check_index(free_index_, kInFree, free_entries,
              "free index disagrees with node state");
  check_index(mem_free_index_, kInMemFree, mem_free_entries,
              "memory-node free index disagrees with node state");
  DMSIM_ASSERT(allocated == total_allocated_,
               "aggregate allocation counter out of sync");
  DMSIM_ASSERT(lent_total == total_lent_, "aggregate lent counter out of sync");
  if (tiered()) {
    // Per-tier recount: free/lent totals and both index variants must agree
    // with a fresh column sweep bucketed by the tier column.
    const std::size_t tc = tiers_.size();
    std::vector<MiB> tier_free(tc, 0);
    std::vector<MiB> tier_lent(tc, 0);
    std::vector<std::size_t> tier_free_entries(tc, 0);
    std::vector<std::size_t> tier_mem_entries(tc, 0);
    for (std::uint32_t i = 0; i < n; ++i) {
      DMSIM_ASSERT(tier_[i] < tc, "tier column out of range");
      tier_free[tier_[i]] += free_[i];
      tier_lent[tier_[i]] += lent_[i];
      if (index_bits_[i] & kInFree) ++tier_free_entries[tier_[i]];
      if (index_bits_[i] & kInMemFree) ++tier_mem_entries[tier_[i]];
    }
    for (std::size_t t = 0; t < tc; ++t) {
      DMSIM_ASSERT(tier_free_mib_[t] == tier_free[t],
                   "per-tier free total out of sync");
      DMSIM_ASSERT(tier_lent_mib_[t] == tier_lent[t],
                   "per-tier lent total out of sync");
      DMSIM_ASSERT(tier_free_index_[t].size() == tier_free_entries[t],
                   "per-tier free index disagrees with node state");
      DMSIM_ASSERT(tier_mem_free_index_[t].size() == tier_mem_entries[t],
                   "per-tier mem-free index disagrees with node state");
      for (const FreeKey& k : tier_free_index_[t]) {
        DMSIM_ASSERT(k.second < n && tier_[k.second] == t &&
                         (index_bits_[k.second] & kInFree) != 0 &&
                         free_[k.second] == k.first,
                     "per-tier free index entry invalid");
      }
      for (const FreeKey& k : tier_mem_free_index_[t]) {
        DMSIM_ASSERT(k.second < n && tier_[k.second] == t &&
                         (index_bits_[k.second] & kInMemFree) != 0 &&
                         free_[k.second] == k.first,
                     "per-tier mem-free index entry invalid");
      }
    }
  }
  if (debug_parity_) check_node_view_parity();
}

void Cluster::check_node_view_parity() const {
  // The legacy AoS materialization recomputes free()/memory_node()/idle()
  // from first principles; every derived column and predicate accessor must
  // agree with it node for node.
  const std::vector<Node> view = materialize_nodes();
  DMSIM_ASSERT(view.size() == node_count(),
               "materialized view size disagrees with node count");
  for (const Node& v : view) {
    const NodeId id = v.id;
    const std::uint32_t i = id.get();
    DMSIM_ASSERT(v.free() == free_[i], "view free() disagrees with column");
    DMSIM_ASSERT(v.memory_node() == (mem_node_[i] != 0),
                 "view memory_node() disagrees with column");
    DMSIM_ASSERT(v.idle() == is_idle(id),
                 "view idle() disagrees with accessor");
    DMSIM_ASSERT(v.capacity == capacity_of(id) && v.local_used == local_used_of(id) &&
                     v.lent == lent_of(id) && v.cores == cores_of(id) &&
                     v.large == is_large(id),
                 "view fields disagree with column accessors");
    DMSIM_ASSERT(can_host(id) == (v.idle() && !v.memory_node()),
                 "can_host() disagrees with view predicates");
  }
}

// ---------------------------------------------------------------------------
// Snapshot (checkpoint/restore)
// ---------------------------------------------------------------------------

namespace {
constexpr std::uint32_t kClusterSection =
    snapshot::section_tag('C', 'L', 'U', 'S');
}  // namespace

void Cluster::save_state(snapshot::Writer& writer) const {
  writer.section(kClusterSection);
  writer.u32(static_cast<std::uint32_t>(node_count()));
  // v4: the tier table and the tier/rack topology columns lead the section.
  // They are immutable, but carrying them makes a tier-topology mixup a
  // loud restore error instead of a silently different simulation.
  writer.u32(static_cast<std::uint32_t>(tiers_.size()));
  for (const MemoryTier& t : tiers_) {
    writer.str(t.name);
    writer.f64(t.latency_ns);
    writer.f64(t.bandwidth_gbs);
    writer.u8(static_cast<std::uint8_t>(t.scope));
  }
  for (const std::uint8_t t : tier_) writer.u8(t);
  for (const std::uint16_t r : rack_) writer.u32(r);
  // Occupancy columns back to back (all running_job, then all local_used,
  // then all lent) — the serializer walks each array linearly, and a
  // restore can bulk-load straight into the columns.
  for (const std::uint32_t rj : running_job_) writer.u32(rj);
  for (const MiB lu : local_used_) writer.i64(lu);
  for (const MiB le : lent_) writer.i64(le);

  // Jobs in id order (unordered_map iteration order is not reproducible);
  // each job's hosts in assignment order, each slot's borrow edges in their
  // live merged order.
  std::vector<std::uint32_t> jobs;
  jobs.reserve(job_hosts_.size());
  for (const auto& [job, hosts] : job_hosts_) {
    (void)hosts;
    jobs.push_back(job);
  }
  std::sort(jobs.begin(), jobs.end());
  writer.u32(static_cast<std::uint32_t>(jobs.size()));
  for (const std::uint32_t job : jobs) {
    const std::vector<NodeId>& hosts = job_hosts_.at(job);
    writer.u32(job);
    writer.u32(static_cast<std::uint32_t>(hosts.size()));
    for (const NodeId h : hosts) {
      const auto it = slots_.find(key(JobId{job}, h));
      DMSIM_ASSERT(it != slots_.end(), "missing slot for assigned host");
      const AllocationSlot& slot = it->second;
      writer.u32(h.get());
      writer.i64(slot.local);
      writer.u32(static_cast<std::uint32_t>(slot.remote.size()));
      for (const auto& [lender, amount] : slot.remote) {
        writer.u32(lender.get());
        writer.i64(amount);
      }
    }
  }

  writer.i64(total_allocated_);
  writer.i64(total_lent_);
  writer.u64(change_epoch_);
}

void Cluster::restore_state(snapshot::Reader& reader,
                            std::uint32_t format_version) {
  reader.expect_section(kClusterSection, "cluster");
  const std::size_t n = node_count();
  if (reader.u32() != n) {
    throw snapshot::SnapshotError(
        "snapshot: node count mismatch — different cluster configuration");
  }
  if (format_version >= 4) {
    // The stored tier topology must match this cluster's exactly; v2/v3
    // files predate tiers and can only have been written by a flat
    // topology (the fingerprint already pins that).
    if (reader.u32() != tiers_.size()) {
      throw snapshot::SnapshotError(
          "snapshot: tier table size mismatch — different memory topology");
    }
    for (const MemoryTier& t : tiers_) {
      const std::string_view name = reader.str();
      const double latency = reader.f64();
      const double bandwidth = reader.f64();
      const std::uint8_t scope = reader.u8();
      if (name != t.name || latency != t.latency_ns ||
          bandwidth != t.bandwidth_gbs ||
          scope != static_cast<std::uint8_t>(t.scope)) {
        throw snapshot::SnapshotError(
            "snapshot: tier table mismatch — different memory topology");
      }
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      if (reader.u8() != tier_[i]) {
        throw snapshot::SnapshotError(
            "snapshot: node tier column mismatch — different memory topology");
      }
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      if (reader.u32() != rack_[i]) {
        throw snapshot::SnapshotError(
            "snapshot: node rack column mismatch — different memory topology");
      }
    }
  }

  // Wipe all mutable state back to the empty ledger.
  slots_.clear();
  job_hosts_.clear();
  borrow_slab_.init(n);
  dirty_lenders_.clear();
  dirty_jobs_.clear();
  lender_dirty_flag_.assign(n, 0);

  if (format_version >= 3) {
    // Columnar layout: each occupancy column stored contiguously.
    for (std::uint32_t i = 0; i < n; ++i) running_job_[i] = reader.u32();
    for (std::uint32_t i = 0; i < n; ++i) local_used_[i] = reader.i64();
    for (std::uint32_t i = 0; i < n; ++i) lent_[i] = reader.i64();
  } else {
    // v2 layout: one interleaved (running_job, local_used, lent) record per
    // node.
    for (std::uint32_t i = 0; i < n; ++i) {
      running_job_[i] = reader.u32();
      local_used_[i] = reader.i64();
      lent_[i] = reader.i64();
    }
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    if (local_used_[i] < 0 || lent_[i] < 0 ||
        local_used_[i] + lent_[i] > capacity_[i]) {
      throw snapshot::SnapshotError("snapshot: node ledger out of range");
    }
  }
  // Derived columns and all three ordered indexes come back in one bulk
  // pass over the restored occupancy columns.
  rebuild_indexes_bulk();

  const std::uint32_t n_jobs = reader.u32();
  for (std::uint32_t j = 0; j < n_jobs; ++j) {
    const std::uint32_t job = reader.u32();
    const std::uint32_t n_hosts = reader.u32();
    if (n_hosts == 0) {
      throw snapshot::SnapshotError("snapshot: assigned job with no hosts");
    }
    std::vector<NodeId> hosts;
    hosts.reserve(n_hosts);
    for (std::uint32_t k_ = 0; k_ < n_hosts; ++k_) {
      const std::uint32_t host = reader.u32();
      if (host >= n || running_job_[host] != job) {
        throw snapshot::SnapshotError(
            "snapshot: slot host is not running the slot's job");
      }
      hosts.emplace_back(NodeId{host});
      AllocationSlot slot;
      slot.job = JobId{job};
      slot.host = NodeId{host};
      slot.local = reader.i64();
      if (slot.local < 0) {
        throw snapshot::SnapshotError("snapshot: negative local share");
      }
      const std::uint32_t n_edges = reader.u32();
      slot.remote.reserve(n_edges);
      for (std::uint32_t e = 0; e < n_edges; ++e) {
        const std::uint32_t lender = reader.u32();
        const MiB amount = reader.i64();
        if (lender >= n || lender == host || amount <= 0) {
          throw snapshot::SnapshotError("snapshot: invalid borrow edge");
        }
        slot.remote.emplace_back(NodeId{lender}, amount);
        borrow_slab_.add(lender, key(JobId{job}, NodeId{host}).packed);
      }
      if (!slots_.emplace(key(JobId{job}, NodeId{host}), std::move(slot))
               .second) {
        throw snapshot::SnapshotError("snapshot: duplicate allocation slot");
      }
    }
    if (!job_hosts_.emplace(job, std::move(hosts)).second) {
      throw snapshot::SnapshotError("snapshot: duplicate job assignment");
    }
  }

  total_allocated_ = reader.i64();
  total_lent_ = reader.i64();
  change_epoch_ = reader.u64();

  // Full validation: per-node sums vs slots, index memberships, reverse
  // index, aggregate counters. A snapshot that passes this is exactly a
  // state the mutation API could have produced.
  check_invariants();
}

}  // namespace dmsim::cluster
