// Cluster model with a disaggregated memory ledger.
//
// A cluster is a set of nodes, each with cores and local DRAM. Node
// allocation is exclusive (one job per node, as in the paper's Slurm setup),
// but memory is a pooled resource: a job hosted on node H may have part of
// its allocation *borrowed* from lender nodes L1..Lk. The ledger tracks, per
// (job, host) slot, the local share and every borrow edge, and enforces the
// paper's rules:
//
//   * free memory on a node = capacity - hosted-job local share - lent,
//   * any free memory may be lent to remote jobs,
//   * a node that has lent more than half of its capacity temporarily becomes
//     a "memory node": it keeps lending but accepts no new jobs (§2.1).
//
// All mutation goes through grow/shrink operations that keep aggregate
// counters consistent; `check_invariants()` revalidates the full ledger and
// is exercised heavily by the test suite.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "obs/observer.hpp"
#include "util/units.hpp"

namespace dmsim::cluster {

/// How the ledger picks lender nodes when a job needs remote memory.
/// The paper does not pin this down; MemoryNodesFirst keeps lending
/// concentrated (fewer contended nodes), MostFree spreads it. The ablation
/// bench compares them.
enum class LenderPolicy {
  MostFree,          ///< lend from nodes with the most free memory first
  MemoryNodesFirst,  ///< prefer nodes already past the half-capacity mark, then most-free
  LeastFree,         ///< pack lenders tightly (worst-fit inverse)
};

struct NodeConfig {
  int cores = 32;
  MiB capacity = 0;
  bool large = false;  ///< classification only; capacity carries the size
};

struct ClusterConfig {
  std::vector<NodeConfig> nodes;
  LenderPolicy lender_policy = LenderPolicy::MemoryNodesFirst;
};

/// Convenience builder: `normal_count` nodes of `normal_mib` plus
/// `large_count` nodes of `large_mib`.
[[nodiscard]] ClusterConfig make_cluster_config(int normal_count, MiB normal_mib,
                                                int large_count, MiB large_mib,
                                                int cores = 32);

struct Node {
  NodeId id{};
  int cores = 0;
  MiB capacity = 0;
  bool large = false;

  JobId running_job{};  ///< invalid when idle
  MiB local_used = 0;   ///< allocated to the hosted job from this node's DRAM
  MiB lent = 0;         ///< allocated to jobs hosted elsewhere

  [[nodiscard]] bool idle() const noexcept { return !running_job.valid(); }
  [[nodiscard]] MiB free() const noexcept { return capacity - local_used - lent; }
  /// Past the half-capacity lending mark => memory node (cannot host).
  [[nodiscard]] bool memory_node() const noexcept { return lent * 2 > capacity; }
};

/// One job's memory on one of its hosts: local share plus borrow edges.
struct AllocationSlot {
  JobId job{};
  NodeId host{};
  MiB local = 0;
  /// Lender -> amount; kept merged (at most one entry per lender).
  std::vector<std::pair<NodeId, MiB>> remote;

  [[nodiscard]] MiB remote_total() const noexcept {
    MiB t = 0;
    for (const auto& [node, amount] : remote) t += amount;
    return t;
  }
  [[nodiscard]] MiB total() const noexcept { return local + remote_total(); }
  /// Fraction of the allocation that is remote (0 when empty).
  [[nodiscard]] double remote_fraction() const noexcept {
    const MiB t = total();
    return t == 0 ? 0.0 : static_cast<double>(remote_total()) / static_cast<double>(t);
  }
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  /// Wire observability: trace ledger churn (lend/reclaim, slot grow/shrink)
  /// and register the ledger.* counters. nullptr (default) disables.
  void set_observer(const obs::Observer* observer);

  // --- topology / aggregate queries -------------------------------------
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] std::span<const Node> nodes() const noexcept { return nodes_; }
  [[nodiscard]] MiB total_capacity() const noexcept { return total_capacity_; }
  [[nodiscard]] MiB total_allocated() const noexcept { return total_allocated_; }
  [[nodiscard]] MiB total_free() const noexcept {
    return total_capacity_ - total_allocated_;
  }
  /// Aggregate memory currently lent across all nodes. Zero means no job
  /// has any remote memory (the contention model is trivially idle).
  [[nodiscard]] MiB total_lent() const noexcept { return total_lent_; }
  [[nodiscard]] int idle_hostable_nodes() const noexcept;
  [[nodiscard]] LenderPolicy lender_policy() const noexcept {
    return config_.lender_policy;
  }

  /// True if the node is idle and not a memory node (may accept a job).
  [[nodiscard]] bool can_host(NodeId id) const;

  // --- job placement -----------------------------------------------------
  /// Mark `hosts` as running `job` and create empty allocation slots.
  /// Every host must currently satisfy can_host().
  void assign_job(JobId job, std::span<const NodeId> hosts);

  /// Release all of the job's memory (local + every borrow edge) and free
  /// its hosts.
  void finish_job(JobId job);

  // --- memory operations (policy layer calls these) ----------------------
  /// Grow the slot's local share by up to `amount`; returns granted MiB.
  MiB grow_local(JobId job, NodeId host, MiB amount);

  /// Shrink the slot's local share by up to `amount`; returns released MiB.
  MiB shrink_local(JobId job, NodeId host, MiB amount);

  /// Grow the slot's remote share by up to `amount`, choosing lenders
  /// according to the configured LenderPolicy; returns granted MiB.
  MiB grow_remote(JobId job, NodeId host, MiB amount);

  /// Shrink the slot's remote share by up to `amount`, returning memory to
  /// lenders (largest borrow first, to clear memory-node status soonest);
  /// returns released MiB.
  MiB shrink_remote(JobId job, NodeId host, MiB amount);

  [[nodiscard]] const AllocationSlot& slot(JobId job, NodeId host) const;
  [[nodiscard]] bool has_slot(JobId job, NodeId host) const;

  /// All slots of a job (one per host), in host order.
  [[nodiscard]] std::vector<const AllocationSlot*> job_slots(JobId job) const;

  /// Jobs borrowing from `lender` as (job, host, amount) triples.
  struct BorrowEdge {
    JobId job{};
    NodeId host{};
    MiB amount = 0;
  };
  [[nodiscard]] std::vector<BorrowEdge> borrowers_of(NodeId lender) const;

  /// Full-ledger consistency check; aborts (DMSIM_ASSERT) on violation.
  void check_invariants() const;

 private:
  struct SlotKey {
    std::uint64_t packed;
    friend bool operator==(SlotKey, SlotKey) noexcept = default;
  };
  struct SlotKeyHash {
    [[nodiscard]] std::size_t operator()(SlotKey k) const noexcept {
      return std::hash<std::uint64_t>{}(k.packed);
    }
  };
  [[nodiscard]] static SlotKey key(JobId job, NodeId host) noexcept {
    return SlotKey{(static_cast<std::uint64_t>(job.get()) << 32) | host.get()};
  }

  [[nodiscard]] Node& node_mut(NodeId id);
  [[nodiscard]] AllocationSlot& slot_mut(JobId job, NodeId host);

  /// Candidate lenders with free memory, ordered by the lender policy.
  [[nodiscard]] std::vector<NodeId> ordered_lenders(NodeId exclude) const;

  ClusterConfig config_;
  std::vector<Node> nodes_;
  std::unordered_map<SlotKey, AllocationSlot, SlotKeyHash> slots_;
  std::unordered_map<std::uint32_t, std::vector<NodeId>> job_hosts_;
  MiB total_capacity_ = 0;
  MiB total_allocated_ = 0;
  MiB total_lent_ = 0;

  // Observability (all nullptr when disabled).
  const obs::Observer* obs_ = nullptr;
  std::uint64_t* c_lend_ops_ = nullptr;
  std::uint64_t* c_lent_mib_ = nullptr;
  std::uint64_t* c_reclaim_ops_ = nullptr;
  std::uint64_t* c_reclaimed_mib_ = nullptr;
  std::uint64_t* c_local_grow_mib_ = nullptr;
  std::uint64_t* c_local_shrink_mib_ = nullptr;
  obs::Gauge* g_lent_ = nullptr;
  obs::Gauge* g_allocated_ = nullptr;
};

}  // namespace dmsim::cluster
