// Cluster model with a disaggregated memory ledger.
//
// A cluster is a set of nodes, each with cores and local DRAM. Node
// allocation is exclusive (one job per node, as in the paper's Slurm setup),
// but memory is a pooled resource: a job hosted on node H may have part of
// its allocation *borrowed* from lender nodes L1..Lk. The ledger tracks, per
// (job, host) slot, the local share and every borrow edge, and enforces the
// paper's rules:
//
//   * free memory on a node = capacity - hosted-job local share - lent,
//   * any free memory may be lent to remote jobs,
//   * a node that has lent more than half of its capacity temporarily becomes
//     a "memory node": it keeps lending but accepts no new jobs (§2.1).
//
// All mutation goes through grow/shrink operations that keep aggregate
// counters consistent; `check_invariants()` revalidates the full ledger and
// is exercised heavily by the test suite.
//
// Storage layout: the ledger is a structure of arrays. Each per-node
// attribute (capacity, local share, lent, derived free, running job, the
// memory-node flag) lives in its own contiguous column indexed by node id,
// so full-ledger scans — invariant sweeps, slowdown evaluation, snapshot
// serialization, the scale_sweep probes — touch only the columns they need
// and stay cache-linear at 100k-1M nodes, where the former vector<Node> of
// fat per-node objects paid a full struct line per probe. The public
// `Node` type remains as a *value view*: `node(id)` materializes one from
// the columns, and `nodes()` yields views, so existing callers compile
// unchanged. Hot paths use the `*_of()` column accessors instead, which
// read exactly one array element.
//
// Scalability: every mutation maintains three ordered free-memory indexes
// (hostable nodes, lendable nodes, lendable memory nodes) plus a reverse
// lender -> borrow-edge slab (a CSR-style flat edge pool with per-lender
// rows), so host selection, lender ordering, `idle_hostable_nodes()` and
// `borrowers_of()` never rescan all nodes or all slots. The indexes are
// keyed (free asc, id asc); descending-free orders are produced by walking
// equal-free buckets back to front, which reproduces the exact
// (free desc, id asc) order of the former sort-based comparators.
#pragma once

#include <cstdint>
#include <functional>
#include <iterator>
#include <set>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/observer.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace dmsim::snapshot {
class Writer;
class Reader;
}  // namespace dmsim::snapshot

namespace dmsim::cluster {

/// How the ledger picks lender nodes when a job needs remote memory.
/// The paper does not pin this down; MemoryNodesFirst keeps lending
/// concentrated (fewer contended nodes), MostFree spreads it. The ablation
/// bench compares them.
enum class LenderPolicy {
  MostFree,          ///< lend from nodes with the most free memory first
  MemoryNodesFirst,  ///< prefer nodes already past the half-capacity mark, then most-free
  LeastFree,         ///< pack lenders tightly (worst-fit inverse)
};

/// Interconnect reach of a memory tier, in increasing distance order.
enum class TierScope : std::uint8_t {
  Local = 0,      ///< same-node DRAM exposed to the pool
  Rack = 1,       ///< rack-local CXL switch hop
  CrossRack = 2,  ///< cross-rack fabric
};

/// The latency/bandwidth point the paper's flat remote pool implicitly
/// models (one rack-scale CXL hop). A tier at exactly this point has
/// latency and bandwidth factors of 1.0, so the single-default-tier
/// topology reproduces the flat-pool arithmetic bit for bit.
inline constexpr double kTierReferenceLatencyNs = 350.0;
inline constexpr double kTierReferenceBandwidthGbs = 50.0;

/// One row of the memory-tier descriptor table. Tiers describe how far a
/// lender's memory is from a borrowing host: slower tiers amplify a job's
/// remote-latency exposure (latency_ns / reference) and congest faster
/// under shared bandwidth (reference / bandwidth_gbs).
struct MemoryTier {
  std::string name = "pool";
  double latency_ns = kTierReferenceLatencyNs;
  double bandwidth_gbs = kTierReferenceBandwidthGbs;
  TierScope scope = TierScope::Rack;
};

/// The implicit tier of every flat-pool (un-tiered) configuration.
[[nodiscard]] MemoryTier default_memory_tier();

struct NodeConfig {
  int cores = 32;
  MiB capacity = 0;
  bool large = false;  ///< classification only; capacity carries the size
  std::uint8_t tier = 0;   ///< index into ClusterConfig::tiers
  std::uint16_t rack = 0;  ///< physical grouping; topology metadata only
};

struct ClusterConfig {
  std::vector<NodeConfig> nodes;
  LenderPolicy lender_policy = LenderPolicy::MemoryNodesFirst;
  /// Memory-tier descriptor table. Empty means the flat single-pool model
  /// of the paper: one implicit default_memory_tier() covering every node.
  std::vector<MemoryTier> tiers;
};

/// Convenience builder: `normal_count` nodes of `normal_mib` plus
/// `large_count` nodes of `large_mib`.
[[nodiscard]] ClusterConfig make_cluster_config(int normal_count, MiB normal_mib,
                                                int large_count, MiB large_mib,
                                                int cores = 32);

/// Read-only *value view* of one node, materialized from the ledger columns
/// by `Cluster::node()` / `Cluster::nodes()`. It carries the same fields the
/// former stored per-node struct had, so query-side callers are layout-
/// agnostic. Views are snapshots: a view taken before a mutation does not
/// observe it.
struct Node {
  NodeId id{};
  int cores = 0;
  MiB capacity = 0;
  bool large = false;

  JobId running_job{};  ///< invalid when idle
  MiB local_used = 0;   ///< allocated to the hosted job from this node's DRAM
  MiB lent = 0;         ///< allocated to jobs hosted elsewhere

  [[nodiscard]] bool idle() const noexcept { return !running_job.valid(); }
  [[nodiscard]] MiB free() const noexcept { return capacity - local_used - lent; }
  /// Past the half-capacity lending mark => memory node (cannot host).
  [[nodiscard]] bool memory_node() const noexcept { return lent * 2 > capacity; }
};

/// One job's memory on one of its hosts: local share plus borrow edges.
struct AllocationSlot {
  JobId job{};
  NodeId host{};
  MiB local = 0;
  /// Lender -> amount; kept merged (at most one entry per lender).
  std::vector<std::pair<NodeId, MiB>> remote;

  [[nodiscard]] MiB remote_total() const noexcept {
    MiB t = 0;
    for (const auto& [node, amount] : remote) t += amount;
    return t;
  }
  [[nodiscard]] MiB total() const noexcept { return local + remote_total(); }
  /// Fraction of the allocation that is remote (0 when empty).
  [[nodiscard]] double remote_fraction() const noexcept {
    const MiB t = total();
    return t == 0 ? 0.0 : static_cast<double>(remote_total()) / static_cast<double>(t);
  }
};

class Cluster {
 public:
  class NodeIterator;
  class NodeView;

  explicit Cluster(ClusterConfig config);

  /// Wire observability: trace ledger churn (lend/reclaim, slot grow/shrink)
  /// and register the ledger.* counters. nullptr (default) disables.
  void set_observer(const obs::Observer* observer);

  // --- topology / aggregate queries -------------------------------------
  [[nodiscard]] std::size_t node_count() const noexcept {
    return capacity_.size();
  }
  /// Materialize the value view of one node from the columns.
  [[nodiscard]] Node node(NodeId id) const;
  /// Iterable range of node views (ascending id). Prefer the column
  /// accessors below on hot paths — a view materializes every attribute.
  [[nodiscard]] NodeView nodes() const noexcept;
  [[nodiscard]] MiB total_capacity() const noexcept { return total_capacity_; }
  [[nodiscard]] MiB total_allocated() const noexcept { return total_allocated_; }
  [[nodiscard]] MiB total_free() const noexcept {
    return total_capacity_ - total_allocated_;
  }
  /// Aggregate memory currently lent across all nodes. Zero means no job
  /// has any remote memory (the contention model is trivially idle).
  [[nodiscard]] MiB total_lent() const noexcept { return total_lent_; }
  [[nodiscard]] int idle_hostable_nodes() const noexcept {
    return static_cast<int>(host_index_.size());
  }
  [[nodiscard]] LenderPolicy lender_policy() const noexcept {
    return config_.lender_policy;
  }

  // --- memory-tier topology ----------------------------------------------
  /// Normalized tier table (never empty: a flat config gets the implicit
  /// default tier at index 0).
  [[nodiscard]] std::span<const MemoryTier> tiers() const noexcept {
    return tiers_;
  }
  [[nodiscard]] std::size_t tier_count() const noexcept {
    return tiers_.size();
  }
  /// True when more than one tier exists. Every tier-aware code path is
  /// gated on this so a degenerate single-tier topology takes exactly the
  /// flat-pool instructions (the byte-identity contract).
  [[nodiscard]] bool tiered() const noexcept { return tiers_.size() > 1; }
  [[nodiscard]] std::uint8_t tier_of(NodeId id) const {
    return tier_[checked(id)];
  }
  [[nodiscard]] std::uint16_t rack_of(NodeId id) const {
    return rack_[checked(id)];
  }
  [[nodiscard]] std::span<const std::uint8_t> tier_column() const noexcept {
    return tier_;
  }
  [[nodiscard]] std::span<const std::uint16_t> rack_column() const noexcept {
    return rack_;
  }
  /// latency_ns / reference-latency of tier `t` (1.0 for the default tier).
  [[nodiscard]] double tier_latency_factor(std::uint8_t t) const {
    return tier_latency_factor_[t];
  }
  /// reference-bandwidth / bandwidth_gbs of tier `t` (1.0 for the default
  /// tier); scales how fast the tier's lenders congest under pressure.
  [[nodiscard]] double tier_bandwidth_factor(std::uint8_t t) const {
    return tier_bandwidth_factor_[t];
  }
  /// Tier ids ordered nearest first (latency asc, id asc) — the spill-out
  /// order lender selection walks when tiered.
  [[nodiscard]] std::span<const std::uint8_t> tier_order() const noexcept {
    return tier_order_;
  }
  /// Lendable free memory in tier `t` (sum of free() over its nodes).
  [[nodiscard]] MiB tier_free(std::uint8_t t) const {
    return tiered() ? tier_free_mib_[t] : total_free();
  }
  /// Memory currently lent out of tier `t`.
  [[nodiscard]] MiB tier_lent(std::uint8_t t) const {
    return tiered() ? tier_lent_mib_[t] : total_lent_;
  }

  // --- single-column accessors (one array read each; hot-path safe) -------
  [[nodiscard]] MiB capacity_of(NodeId id) const {
    return capacity_[checked(id)];
  }
  [[nodiscard]] MiB local_used_of(NodeId id) const {
    return local_used_[checked(id)];
  }
  [[nodiscard]] MiB lent_of(NodeId id) const { return lent_[checked(id)]; }
  [[nodiscard]] MiB free_of(NodeId id) const { return free_[checked(id)]; }
  [[nodiscard]] int cores_of(NodeId id) const { return cores_[checked(id)]; }
  [[nodiscard]] bool is_large(NodeId id) const {
    return large_[checked(id)] != 0;
  }
  [[nodiscard]] JobId running_job_of(NodeId id) const {
    return JobId{running_job_[checked(id)]};
  }
  [[nodiscard]] bool is_idle(NodeId id) const {
    return running_job_[checked(id)] == NodeId::kInvalid;
  }
  [[nodiscard]] bool is_memory_node(NodeId id) const {
    return mem_node_[checked(id)] != 0;
  }

  // --- whole-column spans (SoA scan surface) ------------------------------
  // Contiguous, indexed by node id. `free_column()[i]` is maintained
  // incrementally (== capacity - local_used - lent at all times), so a
  // full-ledger probe like "count hostable nodes with free >= X" is a
  // branch-light linear scan over two or three columns.
  [[nodiscard]] std::span<const MiB> capacity_column() const noexcept {
    return capacity_;
  }
  [[nodiscard]] std::span<const MiB> local_used_column() const noexcept {
    return local_used_;
  }
  [[nodiscard]] std::span<const MiB> lent_column() const noexcept {
    return lent_;
  }
  [[nodiscard]] std::span<const MiB> free_column() const noexcept {
    return free_;
  }
  [[nodiscard]] std::span<const std::uint32_t> running_job_column()
      const noexcept {
    return running_job_;
  }
  /// 1 where lent*2 > capacity (derived, maintained incrementally).
  [[nodiscard]] std::span<const std::uint8_t> memory_node_column()
      const noexcept {
    return mem_node_;
  }

  /// Materialize the legacy array-of-structs per-node view. Used by the
  /// debug parity checker and the retained *Legacy scan benchmarks; never
  /// on a production path.
  [[nodiscard]] std::vector<Node> materialize_nodes() const;

  /// Monotonic counter bumped by every mutation that changes ledger state
  /// (assignment, completion, any grow/shrink that moved memory). A policy
  /// decision is a pure function of ledger state, so an unchanged epoch
  /// means an unchanged decision — the scheduler uses this to replay cached
  /// denials instead of re-running host selection.
  [[nodiscard]] std::uint64_t change_epoch() const noexcept {
    return change_epoch_;
  }

  /// True if the node is idle and not a memory node (may accept a job).
  [[nodiscard]] bool can_host(NodeId id) const {
    const std::uint32_t i = checked(id);
    return running_job_[i] == NodeId::kInvalid && mem_node_[i] == 0;
  }

  // --- ordered-index queries (policy/scheduler hot paths) -----------------
  /// Nodes with capacity >= `capacity`, ordered (capacity asc, id asc).
  /// Capacities are immutable, so the span is a suffix of a static order.
  [[nodiscard]] std::span<const NodeId> nodes_by_capacity_at_least(
      MiB capacity) const noexcept;

  /// Visit idle, non-memory nodes with free() >= `min_free` in ascending
  /// (free, id) order — the Static policy's "tightest sufficient fit"
  /// order. `fn(NodeId)` returns false to stop early.
  template <typename Fn>
  void visit_hostable_at_least(MiB min_free, Fn&& fn) const {
    const auto begin = host_index_.lower_bound(FreeKey{min_free, 0});
    for (auto it = begin; it != host_index_.end(); ++it) {
      if (!fn(NodeId{it->second})) return;
    }
  }

  /// Visit idle, non-memory nodes with free() < `max_free` in descending
  /// free order (ties by ascending id) — the Static policy's "most free
  /// insufficient" order. `fn(NodeId)` returns false to stop early.
  template <typename Fn>
  void visit_hostable_below_desc(MiB max_free, Fn&& fn) const {
    visit_desc(host_index_, host_index_.lower_bound(FreeKey{max_free, 0}),
               [&](const FreeKey& k) { return fn(NodeId{k.second}); });
  }

  // --- topology edits ------------------------------------------------------
  /// Append idle nodes to the cluster — the what-if overlay's "+N memory
  /// nodes" edit. New nodes take the next ids, start empty, and every
  /// derived column/index is rebuilt in one bulk pass. Must be called while
  /// no simulation events are in flight for the new nodes (the serve layer
  /// applies it right after restoring a snapshot, before resuming). Note
  /// the config fingerprint hashes the ORIGINAL topology; callers restoring
  /// snapshots must apply topology edits after the restore.
  void add_nodes(std::span<const NodeConfig> new_nodes);

  // --- job placement -----------------------------------------------------
  /// Mark `hosts` as running `job` and create empty allocation slots.
  /// Every host must currently satisfy can_host().
  void assign_job(JobId job, std::span<const NodeId> hosts);

  /// Release all of the job's memory (local + every borrow edge) and free
  /// its hosts.
  void finish_job(JobId job);

  // --- memory operations (policy layer calls these) ----------------------
  /// Grow the slot's local share by up to `amount`; returns granted MiB.
  MiB grow_local(JobId job, NodeId host, MiB amount);

  /// Shrink the slot's local share by up to `amount`; returns released MiB.
  MiB shrink_local(JobId job, NodeId host, MiB amount);

  /// Grow the slot's remote share by up to `amount`, choosing lenders
  /// according to the configured LenderPolicy; returns granted MiB.
  MiB grow_remote(JobId job, NodeId host, MiB amount);

  /// Shrink the slot's remote share by up to `amount`, returning memory to
  /// lenders (largest borrow first, to clear memory-node status soonest);
  /// returns released MiB.
  MiB shrink_remote(JobId job, NodeId host, MiB amount);

  /// Shrink one specific borrow edge by up to `amount`, returning memory to
  /// exactly `lender`; returns released MiB (0 when no such edge). The
  /// tier-migration primitive: paired with grow_remote (which refills from
  /// the nearest tier with free capacity) it moves borrowed memory between
  /// tiers without touching any other edge.
  MiB shrink_remote_edge(JobId job, NodeId host, NodeId lender, MiB amount);

  [[nodiscard]] const AllocationSlot& slot(JobId job, NodeId host) const;
  [[nodiscard]] bool has_slot(JobId job, NodeId host) const;

  /// Hosts of a job in assignment order (empty span if not assigned).
  [[nodiscard]] std::span<const NodeId> hosts_of(JobId job) const;

  /// All slots of a job (one per host), in host order.
  [[nodiscard]] std::vector<const AllocationSlot*> job_slots(JobId job) const;

  /// Jobs borrowing from `lender` as (job, host, amount) triples. Edges are
  /// tier-tagged with the lender's tier (every edge of one lender shares it).
  struct BorrowEdge {
    JobId job{};
    NodeId host{};
    MiB amount = 0;
    std::uint8_t tier = 0;
  };
  /// Append `lender`'s borrow edges to `out` in canonical order: ascending
  /// borrower job id, then the host's position in the job's assignment.
  /// O(edges of this lender) via the reverse slab.
  void borrowers_of(NodeId lender, std::vector<BorrowEdge>& out) const;
  [[nodiscard]] std::vector<BorrowEdge> borrowers_of(NodeId lender) const;

  // --- contention dirty tracking ------------------------------------------
  /// Lenders whose bandwidth pressure may have changed since the last
  /// clear_contention_dirty(): an edge was added/removed/resized, or a
  /// borrowing slot's total allocation moved. Deduplicated.
  [[nodiscard]] std::span<const NodeId> dirty_lenders() const noexcept {
    return dirty_lenders_;
  }
  /// Jobs whose slowdown inputs changed (slot totals or borrow edges). May
  /// contain duplicates and ids of jobs that have since finished.
  [[nodiscard]] std::span<const JobId> dirty_jobs() const noexcept {
    return dirty_jobs_;
  }
  void clear_contention_dirty();

  /// Full-ledger consistency check (including every incremental index);
  /// aborts (DMSIM_ASSERT) on violation. One cache-linear pass over the
  /// columns plus one walk of each ordered index — no per-node tree probes.
  void check_invariants() const;

  /// Cross-check the materialized per-node view against the columns:
  /// free()/memory_node()/idle() recomputed from a legacy AoS
  /// materialization must agree with the free/mem-node columns and
  /// can_host() for every node. Cheap insurance that the SoA refactor and
  /// the value-view stay in lockstep; called from check_invariants() when
  /// parity checking is enabled (default: debug builds only).
  void check_node_view_parity() const;

  /// Enable/disable the per-invariant-check view parity sweep at runtime
  /// (the fuzz harnesses force it on in every build type).
  void set_debug_parity(bool enabled) noexcept { debug_parity_ = enabled; }

  /// Serialize mutable ledger state: the tier table and tier/rack columns
  /// (v4 — restore cross-checks them against the configured topology so a
  /// tier mixup fails loudly), per-node occupancy columns, every job's
  /// hosts and slots (borrow edges in their exact merged order —
  /// grow_remote merges into existing edges positionally, so order is
  /// state), aggregate totals and the change epoch. The rest of the
  /// topology (capacities, lender policy) is NOT serialized; the checkpoint
  /// layer fingerprints it instead. Writes the v4 layout.
  void save_state(snapshot::Writer& writer) const;

  /// Rebuild ledger state from save_state bytes onto this (identically
  /// configured) cluster. `format_version` is the enclosing snapshot
  /// version: 2 reads the legacy interleaved per-node layout, 3 the
  /// columnar layout, >= 4 columnar plus the tier table/columns. The
  /// incremental free-memory indexes and the reverse borrow slab are
  /// rebuilt in one bulk pass from the restored columns (sort + linear set
  /// build, not n individual tree inserts), contention dirty sets are
  /// cleared (the scheduler resets its slowdown cache to a full rebuild),
  /// and check_invariants() validates the result.
  void restore_state(snapshot::Reader& reader, std::uint32_t format_version = 4);

 private:
  struct SlotKey {
    std::uint64_t packed;
    friend bool operator==(SlotKey, SlotKey) noexcept = default;
  };
  struct SlotKeyHash {
    [[nodiscard]] std::size_t operator()(SlotKey k) const noexcept {
      return std::hash<std::uint64_t>{}(k.packed);
    }
  };
  [[nodiscard]] static SlotKey key(JobId job, NodeId host) noexcept {
    return SlotKey{(static_cast<std::uint64_t>(job.get()) << 32) | host.get()};
  }
  [[nodiscard]] static JobId key_job(SlotKey k) noexcept {
    return JobId{static_cast<std::uint32_t>(k.packed >> 32)};
  }
  [[nodiscard]] static NodeId key_host(SlotKey k) noexcept {
    return NodeId{static_cast<std::uint32_t>(k.packed & 0xffffffffu)};
  }

  [[nodiscard]] std::uint32_t checked(NodeId id) const;

  /// (free MiB, node id): the ordered-set key of every free-memory index.
  using FreeKey = std::pair<MiB, std::uint32_t>;
  using FreeIndex = std::set<FreeKey>;

  /// Index-membership bits a node held when last reindexed; reindex_node()
  /// diffs against them so each mutation erases/inserts only what moved.
  /// The key it was indexed under is the free_ column entry (reindex_node
  /// updates both together).
  static constexpr std::uint8_t kInHost = 1;      ///< host_index_: idle, not a memory node
  static constexpr std::uint8_t kInFree = 2;      ///< free_index_: free() > 0
  static constexpr std::uint8_t kInMemFree = 4;   ///< mem_free_index_: memory node, free() > 0

  /// Reverse lender -> borrow-edge index: a CSR-style edge slab. All edges
  /// of all lenders live in one flat entry pool; each lender's row is a
  /// singly-linked chain through the pool (head_[lender]), and freed
  /// entries recycle through a free list. Compared with the former
  /// vector<vector<SlotKey>>, rows cost no per-lender heap allocation and
  /// the whole structure is two contiguous arrays plus the pool.
  struct BorrowSlab {
    static constexpr std::uint32_t kNil = 0xffffffffu;
    struct Entry {
      std::uint64_t key = 0;       ///< packed (job, host) slot key
      std::uint32_t next = kNil;   ///< next edge of the same lender
    };
    std::vector<Entry> pool;
    std::vector<std::uint32_t> head;    ///< per lender: first edge or kNil
    std::vector<std::uint32_t> degree;  ///< per lender: live edge count
    std::uint32_t free_head = kNil;
    std::size_t live = 0;

    void init(std::size_t lenders) {
      pool.clear();
      head.assign(lenders, kNil);
      degree.assign(lenders, 0);
      free_head = kNil;
      live = 0;
    }
    /// Extend the lender rows (new lenders start with no edges) while
    /// preserving the existing pool — the add_nodes companion.
    void grow(std::size_t lenders) {
      DMSIM_ASSERT(lenders >= head.size(), "borrow slab cannot shrink");
      head.resize(lenders, kNil);
      degree.resize(lenders, 0);
    }
    void add(std::uint32_t lender, std::uint64_t key) {
      std::uint32_t slot;
      if (free_head != kNil) {
        slot = free_head;
        free_head = pool[slot].next;
      } else {
        slot = static_cast<std::uint32_t>(pool.size());
        pool.emplace_back();
      }
      pool[slot].key = key;
      pool[slot].next = head[lender];
      head[lender] = slot;
      ++degree[lender];
      ++live;
    }
    /// Unlink the (unique) entry holding `key` under `lender`.
    /// Returns false if absent (callers assert).
    bool remove(std::uint32_t lender, std::uint64_t key) {
      std::uint32_t* link = &head[lender];
      while (*link != kNil) {
        Entry& e = pool[*link];
        if (e.key == key) {
          const std::uint32_t dead = *link;
          *link = e.next;
          e.next = free_head;
          free_head = dead;
          --degree[lender];
          --live;
          return true;
        }
        link = &e.next;
      }
      return false;
    }
    template <typename Fn>
    void for_each(std::uint32_t lender, Fn&& fn) const {
      for (std::uint32_t it = head[lender]; it != kNil; it = pool[it].next) {
        fn(pool[it].key);
      }
    }
  };

  /// Walk `[index.begin(), end)` in descending-free order, visiting equal-
  /// free buckets back to front and each bucket in ascending id order. This
  /// is exactly the (free desc, id asc) order of the former sort-based
  /// lender/host comparators. `fn` returns false to stop.
  template <typename Fn>
  static void visit_desc(const FreeIndex& index, FreeIndex::const_iterator end,
                         Fn&& fn) {
    auto it = end;
    while (it != index.begin()) {
      const auto highest = std::prev(it);
      const auto bucket = index.lower_bound(FreeKey{highest->first, 0});
      for (auto b = bucket; b != it; ++b) {
        if (!fn(*b)) return;
      }
      it = bucket;
    }
  }

  [[nodiscard]] AllocationSlot& slot_mut(JobId job, NodeId host);

  /// Re-derive node `i`'s free value, memory-node flag and index
  /// memberships after a mutation of its local_used_/lent_/running_job_
  /// columns.
  void reindex_node(std::uint32_t i);
  /// Rebuild free_, mem_node_, membership bits and all three ordered
  /// indexes from the capacity/local_used/lent/running_job columns in one
  /// bulk pass: gather keys per index, sort each flat key vector, then
  /// range-construct the sets linearly — instead of n individual O(log n)
  /// tree inserts.
  void rebuild_indexes_bulk();
  void mark_lender_dirty(NodeId id);
  void mark_job_dirty(JobId job) { dirty_jobs_.push_back(job); }
  /// Mark the job and every lender of `slot` dirty: the slot's total moved,
  /// so the amount/total pressure ratio of all its edges changed.
  void mark_slot_dirty(const AllocationSlot& slot);

  /// Best current lender (free memory, excluding `exclude`) under the
  /// configured LenderPolicy, straight from the indexes; invalid id when no
  /// lender remains. grow_remote drains each pick completely before asking
  /// again, so repeated calls walk the same sequence a full materialized
  /// ordering would — in O(log nodes) per pick instead of O(nodes) total.
  /// When tiered, tiers are walked nearest first (tier_order_) and the
  /// policy ranks lenders within each tier — "cheapest tier with free
  /// capacity" in O(log n).
  [[nodiscard]] NodeId next_lender(NodeId exclude) const;
  /// The within-one-tier leg of tiered lender selection: the configured
  /// policy applied to tier `t`'s index pair.
  [[nodiscard]] NodeId next_lender_in_tier(std::uint8_t t,
                                           NodeId exclude) const;
  /// Push tier_lent_mib_ into the ledger.tier_occupancy.* gauges (no-op on
  /// flat topologies, where none are registered).
  void publish_tier_gauges();

  ClusterConfig config_;

  // --- memory-tier topology (immutable after construction) ----------------
  std::vector<MemoryTier> tiers_;           ///< normalized, never empty
  std::vector<std::uint8_t> tier_;          ///< per-node tier column
  std::vector<std::uint16_t> rack_;         ///< per-node rack column
  std::vector<double> tier_latency_factor_;    ///< latency_ns / reference
  std::vector<double> tier_bandwidth_factor_;  ///< reference / bandwidth_gbs
  std::vector<std::uint8_t> tier_order_;    ///< tier ids, latency asc, id asc
  // Per-tier index variants, maintained ONLY when tiered() (the single-tier
  // topology must not pay for them — and degenerates to the global indexes
  // anyway). Membership mirrors free_index_/mem_free_index_ restricted to
  // each tier's nodes, under the same kInFree/kInMemFree bits.
  std::vector<FreeIndex> tier_free_index_;
  std::vector<FreeIndex> tier_mem_free_index_;
  std::vector<MiB> tier_free_mib_;  ///< sum of free() per tier
  std::vector<MiB> tier_lent_mib_;  ///< sum of lent per tier

  // --- structure-of-arrays ledger columns (index = node id) ---------------
  // Immutable topology columns:
  std::vector<MiB> capacity_;
  std::vector<std::int32_t> cores_;
  std::vector<std::uint8_t> large_;
  // Mutable occupancy columns:
  std::vector<std::uint32_t> running_job_;  ///< JobId raw; kInvalid when idle
  std::vector<MiB> local_used_;
  std::vector<MiB> lent_;
  // Derived columns, maintained by reindex_node():
  std::vector<MiB> free_;               ///< capacity - local_used - lent
  std::vector<std::uint8_t> mem_node_;  ///< 1 iff lent*2 > capacity
  std::vector<std::uint8_t> index_bits_;  ///< kInHost|kInFree|kInMemFree

  std::unordered_map<SlotKey, AllocationSlot, SlotKeyHash> slots_;
  std::unordered_map<std::uint32_t, std::vector<NodeId>> job_hosts_;
  MiB total_capacity_ = 0;
  MiB total_allocated_ = 0;
  MiB total_lent_ = 0;

  // Incremental indexes (see file comment).
  FreeIndex host_index_;
  FreeIndex free_index_;
  FreeIndex mem_free_index_;
  std::vector<NodeId> nodes_by_capacity_;  ///< static (capacity asc, id asc)
  std::vector<MiB> capacities_sorted_;     ///< capacities in the same order
  BorrowSlab borrow_slab_;  ///< reverse borrow index (lender -> slot keys)
  std::uint64_t change_epoch_ = 0;

  // Contention dirty sets (consumed via clear_contention_dirty()).
  std::vector<NodeId> dirty_lenders_;
  std::vector<JobId> dirty_jobs_;
  std::vector<std::uint8_t> lender_dirty_flag_;

  bool debug_parity_ =
#ifdef NDEBUG
      false;
#else
      true;
#endif

  // Observability (all nullptr when disabled).
  const obs::Observer* obs_ = nullptr;
  std::uint64_t* c_lend_ops_ = nullptr;
  std::uint64_t* c_lent_mib_ = nullptr;
  std::uint64_t* c_reclaim_ops_ = nullptr;
  std::uint64_t* c_reclaimed_mib_ = nullptr;
  std::uint64_t* c_local_grow_mib_ = nullptr;
  std::uint64_t* c_local_shrink_mib_ = nullptr;
  obs::Gauge* g_lent_ = nullptr;
  obs::Gauge* g_allocated_ = nullptr;
  /// Windowed ledger activity (simulated time on the x axis): MiB moved by
  /// lend/reclaim operations, and borrow-edge churn (edges created or fully
  /// returned per operation). Contention shows up as hot lend windows paired
  /// with high churn.
  obs::TimeSeries* s_lend_mib_ = nullptr;
  obs::TimeSeries* s_reclaim_mib_ = nullptr;
  obs::TimeSeries* s_edge_churn_ = nullptr;
  /// Lenders drained per satisfied grow — the fragmentation signal: a grow
  /// spread across many lenders creates many edges to reclaim later.
  obs::Histogram* h_lenders_per_grow_ = nullptr;
  /// Per-tier lent-MiB gauges ("ledger.tier_occupancy.<i>"); registered
  /// only when tiered, so flat-topology telemetry is unchanged.
  std::vector<obs::Gauge*> g_tier_lent_;
};

/// Forward iterator over node value views (ascending id).
class Cluster::NodeIterator {
 public:
  using iterator_category = std::input_iterator_tag;
  using value_type = Node;
  using difference_type = std::ptrdiff_t;
  using pointer = void;
  using reference = Node;

  NodeIterator() = default;
  NodeIterator(const Cluster* c, std::uint32_t i) noexcept : c_(c), i_(i) {}

  [[nodiscard]] Node operator*() const { return c_->node(NodeId{i_}); }
  NodeIterator& operator++() noexcept {
    ++i_;
    return *this;
  }
  NodeIterator operator++(int) noexcept {
    NodeIterator t = *this;
    ++i_;
    return t;
  }
  friend bool operator==(const NodeIterator& a, const NodeIterator& b) noexcept {
    return a.i_ == b.i_;
  }

 private:
  const Cluster* c_ = nullptr;
  std::uint32_t i_ = 0;
};

/// Range of node value views. `for (const auto& n : cluster.nodes())`
/// behaves exactly as it did over the former stored-node span (each `n` is
/// a materialized snapshot).
class Cluster::NodeView {
 public:
  explicit NodeView(const Cluster* c) noexcept : c_(c) {}
  [[nodiscard]] NodeIterator begin() const noexcept {
    return NodeIterator{c_, 0};
  }
  [[nodiscard]] NodeIterator end() const noexcept {
    return NodeIterator{c_, static_cast<std::uint32_t>(c_->node_count())};
  }
  [[nodiscard]] std::size_t size() const noexcept { return c_->node_count(); }
  [[nodiscard]] bool empty() const noexcept { return c_->node_count() == 0; }

 private:
  const Cluster* c_;
};

inline Cluster::NodeView Cluster::nodes() const noexcept {
  return NodeView{this};
}

}  // namespace dmsim::cluster
