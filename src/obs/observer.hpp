// Observer: the bundle of observability hooks threaded through every layer
// of the simulator (engine, scheduler, cluster ledger, policies).
//
// An Observer is plain pointers — a trace sink, a counters registry and a
// simulated-time clock — all optional. Components accept a
// `const Observer*` (nullptr = fully disabled) and guard each instrumented
// site on it, so a run without observability pays a single predictable
// branch per site and constructs no Event objects.
#pragma once

#include "obs/counters.hpp"
#include "obs/event.hpp"
#include "obs/trace_sink.hpp"

namespace dmsim::obs {

/// Simulated-time source. sim::Engine implements this; obs stays below sim
/// in the layering (it depends only on util).
class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual Seconds sim_now() const noexcept = 0;
};

struct Observer {
  TraceSink* sink = nullptr;
  Counters* counters = nullptr;
  const Clock* clock = nullptr;

  [[nodiscard]] Seconds now() const noexcept {
    return clock != nullptr ? clock->sim_now() : 0.0;
  }
};

/// True when the site should construct and emit an Event. Guard BEFORE
/// building the Event so the disabled path does no work:
///   if (obs::tracing(obs_)) obs_->sink->emit(Event{...}.with(...));
[[nodiscard]] inline bool tracing(const Observer* obs) noexcept {
  return obs != nullptr && obs->sink != nullptr;
}

/// Resolve a counter handle, or nullptr when no registry is wired.
[[nodiscard]] inline std::uint64_t* counter_handle(const Observer* obs,
                                                   std::string_view name) {
  return (obs != nullptr && obs->counters != nullptr)
             ? &obs->counters->counter(name)
             : nullptr;
}

/// Resolve a gauge handle, or nullptr when no registry is wired.
[[nodiscard]] inline Gauge* gauge_handle(const Observer* obs,
                                         std::string_view name) {
  return (obs != nullptr && obs->counters != nullptr)
             ? &obs->counters->gauge(name)
             : nullptr;
}

/// Resolve a histogram handle, or nullptr when no registry is wired.
[[nodiscard]] inline Histogram* histogram_handle(const Observer* obs,
                                                 std::string_view name) {
  return (obs != nullptr && obs->counters != nullptr)
             ? &obs->counters->histogram(name)
             : nullptr;
}

/// Resolve a time-series handle, or nullptr when no registry is wired.
/// `window_width` (seconds of simulated time) applies only on creation.
[[nodiscard]] inline TimeSeries* series_handle(const Observer* obs,
                                               std::string_view name,
                                               Seconds window_width = 1.0) {
  return (obs != nullptr && obs->counters != nullptr)
             ? &obs->counters->series(name, window_width)
             : nullptr;
}

/// Null-guarded counter bump for pre-resolved handles.
inline void bump(std::uint64_t* handle, std::uint64_t delta = 1) noexcept {
  if (handle != nullptr) *handle += delta;
}

/// Null-guarded histogram record for pre-resolved handles.
inline void record(Histogram* handle, std::int64_t value) noexcept {
  if (handle != nullptr) handle->record(value);
}

/// Null-guarded time-series record for pre-resolved handles.
inline void record(TimeSeries* handle, Seconds t, std::int64_t value) noexcept {
  if (handle != nullptr) handle->record(t, value);
}

/// Simulated seconds to integer microseconds, the registry's canonical
/// latency unit (matches the profiler's export resolution).
[[nodiscard]] inline std::int64_t to_micros(Seconds s) noexcept {
  return static_cast<std::int64_t>(s * 1e6);
}

}  // namespace dmsim::obs
