// Trace sinks: serialize the structured event stream (obs/event.hpp).
//
// Two real backends plus a null sink:
//   * NdjsonSink — one JSON object per line, deterministic formatting: the
//     same config + seed yields a byte-identical stream (golden-file tests
//     and diffable policy-divergence debugging rely on this),
//   * ChromeTraceSink — the Chrome trace-event JSON format, loadable in
//     chrome://tracing and Perfetto. Job lifetimes become async begin/end
//     pairs (one track per job id), everything else instant events grouped
//     by subsystem, and queue depth a counter track,
//   * NullSink — swallows events; for measuring pure instrumentation cost
//     against tracing disabled (a null TraceSink* and one branch).
//
// Instrumented components hold a `TraceSink*` that is nullptr when tracing
// is off, so the disabled hot path is a single predictable branch.
#pragma once

#include <fstream>
#include <iosfwd>
#include <memory>
#include <string>

#include "obs/event.hpp"

namespace dmsim::obs {

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void emit(const Event& event) = 0;
  /// Finalize and flush; throws dmsim::Error if the underlying stream went
  /// bad (full disk must not silently truncate a trace). Idempotent; also
  /// invoked (without throwing) by destructors.
  virtual void close() = 0;
};

/// Swallows every event. Exists so benchmarks can separate the cost of
/// event construction + virtual dispatch from serialization.
class NullSink final : public TraceSink {
 public:
  void emit(const Event&) override {}
  void close() override {}
};

/// Newline-delimited JSON, one event per line:
///   {"t":120,"ev":"job_start","job":7,"node":3,"nodes":2,"mib":4096}
class NdjsonSink final : public TraceSink {
 public:
  /// Non-owning; `out` must outlive the sink. `flush_every` > 0 flushes the
  /// stream every N emitted events, so a crashed multi-hour run keeps its
  /// trace tail instead of losing buffered lines; 0 flushes only on close.
  /// Flushing never changes the byte stream, only its durability.
  explicit NdjsonSink(std::ostream& out, std::size_t flush_every = 0)
      : out_(&out), flush_every_(flush_every) {}

  void emit(const Event& event) override;
  void close() override;

 private:
  std::ostream* out_;
  std::size_t flush_every_;
  std::size_t since_flush_ = 0;
  bool closed_ = false;
};

/// Chrome trace-event JSON ({"traceEvents":[...]}). Times are simulated
/// seconds mapped to trace microseconds.
class ChromeTraceSink final : public TraceSink {
 public:
  /// Non-owning; `out` must outlive the sink. Writes the document preamble
  /// immediately and the closing bracket on close()/destruction.
  explicit ChromeTraceSink(std::ostream& out);
  ~ChromeTraceSink() override;

  void emit(const Event& event) override;
  void close() override;

 private:
  /// `async_id` != Event::kNone renders an async span event with that id;
  /// `category` labels the async track ("job" run spans, "queue" waits).
  void raw_event(const Event& event, const char* phase, const char* name,
                 std::int64_t async_id, const char* category, bool counter);

  std::ostream* out_;
  bool first_ = true;
  bool closed_ = false;
};

enum class TraceFormat { Ndjson, Chrome };

/// Parse "ndjson" / "chrome"; throws ConfigError on anything else.
[[nodiscard]] TraceFormat parse_trace_format(const std::string& value);

/// Sink writing to a caller-owned stream. `flush_every` applies to the
/// NDJSON backend (see NdjsonSink); the Chrome backend ignores it.
[[nodiscard]] std::unique_ptr<TraceSink> make_sink(TraceFormat format,
                                                   std::ostream& out,
                                                   std::size_t flush_every = 0);

/// Sink owning a file stream; throws ConfigError if the file cannot be
/// opened. close() reports write failures (full disk) as errors.
[[nodiscard]] std::unique_ptr<TraceSink> make_file_sink(
    TraceFormat format, const std::string& path, std::size_t flush_every = 0);

}  // namespace dmsim::obs
