// Typed trace events for the observability layer (obs/).
//
// Every subsystem emits the same small POD: a kind, the simulated time, the
// job/node it concerns (when applicable) and up to a handful of named int64
// payload fields. Keys and detail strings are static string literals so an
// Event is trivially copyable and emission never allocates; sinks serialize
// it (NDJSON, Chrome trace-event) without a schema of their own.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "util/units.hpp"

namespace dmsim::obs {

enum class EventKind : std::uint8_t {
  // sim::Engine
  EngineSchedule,   ///< event queued; `when` carries the target time
  EngineFire,       ///< event popped and executed
  EngineCancel,     ///< pending event invalidated
  // sched::Scheduler
  JobSubmit,        ///< job entered the pending queue for the first time
  JobStart,         ///< FCFS start
  BackfillStart,    ///< started by the backfill pass
  JobRequeue,       ///< killed (OOM) and re-queued
  JobOomKill,       ///< allocation could not grow to demand
  JobWalltimeKill,  ///< exceeded its requested walltime
  JobComplete,
  JobAbandon,       ///< exceeded max_restarts after repeated OOM
  MonitorUpdate,    ///< Monitor/Decider/Actuator pass over one running job
  SchedPass,        ///< one scheduling pass (FCFS + backfill)
  // cluster::Cluster ledger
  MemLend,          ///< remote memory granted to a (job, host) slot
  MemReclaim,       ///< remote memory returned to its lenders
  SlotGrow,         ///< local share grew
  SlotShrink,       ///< local share shrank
  // policy decisions
  PolicyGrant,      ///< try_start placed the job
  PolicyDeny,       ///< try_start refused; `detail` names the reason
};

/// Stable wire name ("job_start", "mem_lend", ...) used by every sink.
[[nodiscard]] std::string_view to_string(EventKind kind) noexcept;

/// Deterministic span identifiers for causal job tracks. A job's lifetime
/// decomposes into one queued span and one running span per incarnation
/// (restart); packing (job, incarnation, phase) into one int64 keeps ids
/// stable across runs, thread counts and checkpoint restores without any
/// shared counter.
enum class SpanPhase : std::int64_t { Queued = 0, Running = 1 };

[[nodiscard]] constexpr std::int64_t span_id(std::int64_t job,
                                             std::int64_t incarnation,
                                             SpanPhase phase) noexcept {
  return job * 4096 + incarnation * 2 + static_cast<std::int64_t>(phase);
}

struct Event {
  /// Sentinel for "field absent" in `job` / `node` / `span` / `parent`.
  static constexpr std::int64_t kNone = -1;

  EventKind kind{};
  Seconds time = 0.0;
  std::int64_t job = kNone;
  std::int64_t node = kNone;
  std::int64_t span = kNone;       ///< causal span this event belongs to
  std::int64_t parent = kNone;     ///< span that caused it (cause link)
  Seconds when = kNoTime;          ///< secondary time (EngineSchedule target)
  const char* detail = nullptr;    ///< short static token (deny reason, ...)

  struct Field {
    const char* key = nullptr;     ///< static string literal
    std::int64_t value = 0;
  };
  std::array<Field, 4> fields{};
  std::size_t num_fields = 0;

  /// Attach a named payload field; chains on a temporary:
  ///   Event{EventKind::MemLend, now, job, host}.with("mib", granted)
  Event& with(const char* key, std::int64_t value) noexcept {
    if (num_fields < fields.size()) {
      fields[num_fields++] = Field{key, value};
    }
    return *this;
  }

  /// Attach causal span ids; chains like with():
  ///   Event{EventKind::JobStart, now}.in_span(run_span, queued_span)
  Event& in_span(std::int64_t s, std::int64_t p = kNone) noexcept {
    span = s;
    parent = p;
    return *this;
  }
};

}  // namespace dmsim::obs
