// Self-profiler: wall-clock phase timers and simulator-throughput reporting.
//
// The driver brackets its phases (trace load, generation, sim loop, export)
// and the profiler reports per-phase wall time plus the two numbers any
// simulator perf claim needs: engine events per wall second and simulated
// seconds per wall second.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace dmsim::obs {

class Profiler {
 public:
  struct Phase {
    std::string name;
    double wall_seconds = 0.0;
  };

  /// Start a named phase, ending the current one (phases never nest; the
  /// driver's pipeline is sequential).
  void begin_phase(std::string name);

  /// End the current phase (no-op when none is open).
  void end_phase();

  /// Accumulated phases, in execution order. Re-entering a name appends a
  /// new entry; callers wanting aggregation can sum by name.
  [[nodiscard]] const std::vector<Phase>& phases() const noexcept {
    return phases_;
  }

  [[nodiscard]] double total_seconds() const noexcept;

  /// Wall time of the named phase (summed over re-entries), 0 if absent.
  [[nodiscard]] double phase_seconds(std::string_view name) const noexcept;

 private:
  using ClockT = std::chrono::steady_clock;
  std::vector<Phase> phases_;
  ClockT::time_point phase_start_{};
  bool open_ = false;
};

/// RAII phase bracket: `obs::PhaseScope s(profiler, "sim loop");`
class PhaseScope {
 public:
  PhaseScope(Profiler& profiler, std::string name) : profiler_(profiler) {
    profiler_.begin_phase(std::move(name));
  }
  ~PhaseScope() { profiler_.end_phase(); }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Profiler& profiler_;
};

/// Simulator throughput over one or more runs.
struct ThroughputReport {
  std::uint64_t engine_events = 0;
  Seconds sim_seconds = 0.0;    ///< simulated time covered (sum of makespans)
  double wall_seconds = 0.0;    ///< wall time spent inside the sim loop

  [[nodiscard]] double events_per_second() const noexcept {
    return wall_seconds > 0.0
               ? static_cast<double>(engine_events) / wall_seconds
               : 0.0;
  }
  [[nodiscard]] double sim_seconds_per_wall_second() const noexcept {
    return wall_seconds > 0.0 ? sim_seconds / wall_seconds : 0.0;
  }
};

/// One-line human-readable rendering:
///   "1.23M events/s, 4.5e+03 sim-s/wall-s (87654 events, 0.07 wall-s)"
void print_throughput(std::ostream& os, const ThroughputReport& report);

}  // namespace dmsim::obs
