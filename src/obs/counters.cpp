#include "obs/counters.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace dmsim::obs {

std::uint32_t Histogram::bucket_index(std::int64_t v) noexcept {
  if (v < static_cast<std::int64_t>(kUnitBuckets)) {
    return v > 0 ? static_cast<std::uint32_t>(v) : 0;
  }
  const auto u = static_cast<std::uint64_t>(v);
  const int msb = 63 - std::countl_zero(u);  // >= 4 here
  // Keep the top 4 bits (leading 1 + 3 sub-bucket bits): top is in [8, 16).
  const auto top = static_cast<std::uint32_t>(u >> (msb - 3));
  return kUnitBuckets + static_cast<std::uint32_t>(msb - 4) * kSubBuckets +
         (top - kSubBuckets);
}

std::int64_t Histogram::bucket_lower_bound(std::uint32_t bucket) noexcept {
  if (bucket < kUnitBuckets) return static_cast<std::int64_t>(bucket);
  const std::uint32_t tier = (bucket - kUnitBuckets) / kSubBuckets;
  const std::uint32_t sub = (bucket - kUnitBuckets) % kSubBuckets;
  return static_cast<std::int64_t>(
      static_cast<std::uint64_t>(kSubBuckets + sub) << (tier + 1));
}

std::int64_t Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0;
  const double clamped = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
  auto rank = static_cast<std::uint64_t>(
      std::ceil(clamped * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::uint32_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= rank) {
      const std::int64_t lb = bucket_lower_bound(b);
      return lb < min_ ? min_ : (lb > max_ ? max_ : lb);
    }
  }
  return max_;
}

void TimeSeries::record(Seconds t, std::int64_t v) noexcept {
  const auto window =
      static_cast<std::int64_t>(std::floor(t / window_width_));
  if (points_.empty() || window > points_.back().window) {
    points_.push_back(Point{window, 1, v, v, v});
    return;
  }
  // Discrete-event time is monotonic; anything not newer folds into the
  // current window so out-of-order records cannot corrupt the series.
  Point& p = points_.back();
  ++p.count;
  p.sum += v;
  if (v < p.min) p.min = v;
  if (v > p.max) p.max = v;
}

std::uint64_t& Counters::counter(std::string_view name) {
  const auto it = counter_index_.find(name);
  if (it != counter_index_.end()) return counters_[it->second].second;
  counters_.emplace_back(std::string(name), 0);
  // Key the index by the stored string (stable in a deque), not the caller's
  // view, which may dangle.
  counter_index_.emplace(counters_.back().first, counters_.size() - 1);
  return counters_.back().second;
}

Gauge& Counters::gauge(std::string_view name) {
  const auto it = gauge_index_.find(name);
  if (it != gauge_index_.end()) return gauges_[it->second].second;
  gauges_.emplace_back(std::string(name), Gauge{});
  gauge_index_.emplace(gauges_.back().first, gauges_.size() - 1);
  return gauges_.back().second;
}

Histogram& Counters::histogram(std::string_view name) {
  const auto it = histogram_index_.find(name);
  if (it != histogram_index_.end()) return histograms_[it->second].second;
  histograms_.emplace_back(std::string(name), Histogram{});
  histogram_index_.emplace(histograms_.back().first, histograms_.size() - 1);
  return histograms_.back().second;
}

TimeSeries& Counters::series(std::string_view name, Seconds window_width) {
  const auto it = series_index_.find(name);
  if (it != series_index_.end()) return series_[it->second].second;
  series_.emplace_back(std::string(name), TimeSeries{window_width});
  series_index_.emplace(series_.back().first, series_.size() - 1);
  return series_.back().second;
}

CountersSnapshot Counters::snapshot() const {
  CountersSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, value] : counters_) {
    snap.counters.push_back({name, value});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g.value, g.high_water});
  }
  snap.histograms.reserve(histograms_.size());
  // Never-recorded histograms and empty series are skipped: a handle
  // resolved but never hit carries no information, and leaving it out keeps
  // exports equal across restore (a restored registry re-creates exactly
  // the names the snapshot carried, not every handle the run resolved).
  for (const auto& [name, h] : histograms_) {
    if (h.count() == 0) continue;
    CountersSnapshot::HistogramEntry entry;
    entry.name = name;
    entry.count = h.count();
    entry.sum = h.sum();
    entry.min = h.min();
    entry.max = h.max();
    for (std::uint32_t b = 0; b < Histogram::kBuckets; ++b) {
      if (const std::uint64_t n = h.bucket_count(b); n != 0) {
        entry.buckets.emplace_back(b, n);
      }
    }
    snap.histograms.push_back(std::move(entry));
  }
  snap.series.reserve(series_.size());
  for (const auto& [name, s] : series_) {
    if (s.points().empty()) continue;
    snap.series.push_back({name, s.window_width(), s.points()});
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  std::sort(snap.series.begin(), snap.series.end(), by_name);
  return snap;
}

void Counters::restore(const CountersSnapshot& snap) {
  for (auto& entry : counters_) entry.second = 0;
  for (auto& entry : gauges_) entry.second = Gauge{};
  for (auto& entry : histograms_) entry.second.reset();
  for (auto& entry : series_) entry.second.reset();
  for (const auto& c : snap.counters) counter(c.name) = c.value;
  for (const auto& g : snap.gauges) {
    Gauge& target = gauge(g.name);
    target.value = g.value;
    target.high_water = g.high_water;
  }
  for (const auto& h : snap.histograms) {
    histogram(h.name).restore_state(h.count, h.sum, h.min, h.max, h.buckets);
  }
  for (const auto& s : snap.series) {
    series(s.name, s.window_width).assign(s.window_width, s.points);
  }
}

}  // namespace dmsim::obs
