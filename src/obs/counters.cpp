#include "obs/counters.hpp"

#include <algorithm>

namespace dmsim::obs {

std::uint64_t& Counters::counter(std::string_view name) {
  const auto it = counter_index_.find(name);
  if (it != counter_index_.end()) return counters_[it->second].second;
  counters_.emplace_back(std::string(name), 0);
  // Key the index by the stored string (stable in a deque), not the caller's
  // view, which may dangle.
  counter_index_.emplace(counters_.back().first, counters_.size() - 1);
  return counters_.back().second;
}

Gauge& Counters::gauge(std::string_view name) {
  const auto it = gauge_index_.find(name);
  if (it != gauge_index_.end()) return gauges_[it->second].second;
  gauges_.emplace_back(std::string(name), Gauge{});
  gauge_index_.emplace(gauges_.back().first, gauges_.size() - 1);
  return gauges_.back().second;
}

CountersSnapshot Counters::snapshot() const {
  CountersSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, value] : counters_) {
    snap.counters.push_back({name, value});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g.value, g.high_water});
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  return snap;
}

void Counters::restore(const CountersSnapshot& snap) {
  for (auto& entry : counters_) entry.second = 0;
  for (auto& entry : gauges_) entry.second = Gauge{};
  for (const auto& c : snap.counters) counter(c.name) = c.value;
  for (const auto& g : snap.gauges) {
    Gauge& target = gauge(g.name);
    target.value = g.value;
    target.high_water = g.high_water;
  }
}

}  // namespace dmsim::obs
