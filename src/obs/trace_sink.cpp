#include "obs/trace_sink.hpp"

#include <cstdio>
#include <ostream>
#include <utility>

#include "util/error.hpp"

namespace dmsim::obs {

std::string_view to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::EngineSchedule:
      return "engine_schedule";
    case EventKind::EngineFire:
      return "engine_fire";
    case EventKind::EngineCancel:
      return "engine_cancel";
    case EventKind::JobSubmit:
      return "job_submit";
    case EventKind::JobStart:
      return "job_start";
    case EventKind::BackfillStart:
      return "backfill_start";
    case EventKind::JobRequeue:
      return "job_requeue";
    case EventKind::JobOomKill:
      return "job_oom_kill";
    case EventKind::JobWalltimeKill:
      return "job_walltime_kill";
    case EventKind::JobComplete:
      return "job_complete";
    case EventKind::JobAbandon:
      return "job_abandon";
    case EventKind::MonitorUpdate:
      return "monitor_update";
    case EventKind::SchedPass:
      return "sched_pass";
    case EventKind::MemLend:
      return "mem_lend";
    case EventKind::MemReclaim:
      return "mem_reclaim";
    case EventKind::SlotGrow:
      return "slot_grow";
    case EventKind::SlotShrink:
      return "slot_shrink";
    case EventKind::PolicyGrant:
      return "policy_grant";
    case EventKind::PolicyDeny:
      return "policy_deny";
  }
  return "unknown";
}

namespace {

/// Deterministic double formatting shared by both sinks: shortest round-trip
/// representation via %.17g is locale-independent for the values we emit.
void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_int(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out += buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// NdjsonSink
// ---------------------------------------------------------------------------

void NdjsonSink::emit(const Event& e) {
  std::string line;
  line.reserve(96);
  line += "{\"t\":";
  append_double(line, e.time);
  line += ",\"ev\":\"";
  line += to_string(e.kind);
  line += '"';
  if (e.job != Event::kNone) {
    line += ",\"job\":";
    append_int(line, e.job);
  }
  if (e.node != Event::kNone) {
    line += ",\"node\":";
    append_int(line, e.node);
  }
  if (e.span != Event::kNone) {
    line += ",\"span\":";
    append_int(line, e.span);
  }
  if (e.parent != Event::kNone) {
    line += ",\"parent\":";
    append_int(line, e.parent);
  }
  if (e.when != kNoTime) {
    line += ",\"when\":";
    append_double(line, e.when);
  }
  if (e.detail != nullptr) {
    line += ",\"detail\":\"";
    line += e.detail;  // static identifier tokens; no escaping needed
    line += '"';
  }
  for (std::size_t i = 0; i < e.num_fields; ++i) {
    line += ",\"";
    line += e.fields[i].key;
    line += "\":";
    append_int(line, e.fields[i].value);
  }
  line += "}\n";
  *out_ << line;
  if (flush_every_ != 0 && ++since_flush_ >= flush_every_) {
    out_->flush();
    since_flush_ = 0;
  }
}

void NdjsonSink::close() {
  if (closed_) return;
  closed_ = true;
  out_->flush();
  if (!out_->good()) throw Error("NDJSON trace sink: stream write failed");
}

// ---------------------------------------------------------------------------
// ChromeTraceSink
// ---------------------------------------------------------------------------

namespace {

/// Process-id lanes grouping events by subsystem in the trace viewer.
constexpr int kTidEngine = 1;
constexpr int kTidSched = 2;
constexpr int kTidCluster = 3;
constexpr int kTidPolicy = 4;

int tid_of(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::EngineSchedule:
    case EventKind::EngineFire:
    case EventKind::EngineCancel:
      return kTidEngine;
    case EventKind::MemLend:
    case EventKind::MemReclaim:
    case EventKind::SlotGrow:
    case EventKind::SlotShrink:
      return kTidCluster;
    case EventKind::PolicyGrant:
    case EventKind::PolicyDeny:
      return kTidPolicy;
    default:
      return kTidSched;
  }
}

}  // namespace

ChromeTraceSink::ChromeTraceSink(std::ostream& out) : out_(&out) {
  *out_ << "{\"traceEvents\":[\n";
}

ChromeTraceSink::~ChromeTraceSink() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; dmsim_run calls close() explicitly to
    // surface write failures.
  }
}

void ChromeTraceSink::raw_event(const Event& e, const char* phase,
                                const char* name, std::int64_t async_id,
                                const char* category, bool counter) {
  const bool async = async_id != Event::kNone;
  std::string line;
  line.reserve(160);
  line += first_ ? "" : ",\n";
  first_ = false;
  line += "{\"name\":\"";
  line += name;
  line += "\",\"ph\":\"";
  line += phase;
  line += "\",\"ts\":";
  append_double(line, e.time * 1e6);  // trace ts unit is microseconds
  line += ",\"pid\":1,\"tid\":";
  append_int(line, tid_of(e.kind));
  if (async) {
    line += ",\"cat\":\"";
    line += category;
    line += "\",\"id\":";
    append_int(line, async_id);
  }
  if (phase[0] == 'i') line += ",\"s\":\"t\"";
  line += ",\"args\":{";
  bool first_arg = true;
  const auto arg = [&](const char* key, std::int64_t v) {
    if (!first_arg) line += ',';
    first_arg = false;
    line += '"';
    line += key;
    line += "\":";
    append_int(line, v);
  };
  if (counter) {
    // Counter tracks plot their args as series; emit only the series value.
    arg("value", e.num_fields > 0 ? e.fields[0].value : 0);
  } else {
    if (e.job != Event::kNone) arg("job", e.job);
    if (e.node != Event::kNone) arg("node", e.node);
    if (e.span != Event::kNone) arg("span", e.span);
    if (e.parent != Event::kNone) arg("parent", e.parent);
    for (std::size_t i = 0; i < e.num_fields; ++i) {
      arg(e.fields[i].key, e.fields[i].value);
    }
    if (e.detail != nullptr) {
      if (!first_arg) line += ',';
      first_arg = false;
      line += "\"detail\":\"";
      line += e.detail;
      line += '"';
    }
    if (e.when != kNoTime) {
      if (!first_arg) line += ',';
      first_arg = false;
      line += "\"when\":";
      append_double(line, e.when);
    }
  }
  line += "}}";
  *out_ << line;
}

void ChromeTraceSink::emit(const Event& e) {
  char name[48];
  switch (e.kind) {
    // Causal queue spans: a job's wait renders as an async "queue" span per
    // (job, incarnation), begun at (re)submission and ended when the start
    // event names it as its parent. Events without span ids (older
    // emitters) keep the plain instant rendering.
    case EventKind::JobSubmit:
    case EventKind::JobRequeue:
      if (e.span != Event::kNone) {
        std::snprintf(name, sizeof name, "queue job %lld",
                      static_cast<long long>(e.job));
        raw_event(e, "b", name, e.span, "queue", /*counter=*/false);
        return;
      }
      raw_event(e, "i", to_string(e.kind).data(), Event::kNone, "", false);
      return;
    // A job's residency on the machine renders as an async span per
    // incarnation (span id when present, job id otherwise); begin on
    // (back)fill start, end on any terminal/kill event. A span-carrying
    // start also closes the queued span that caused it.
    case EventKind::JobStart:
    case EventKind::BackfillStart:
      std::snprintf(name, sizeof name, "job %lld", static_cast<long long>(e.job));
      if (e.parent != Event::kNone) {
        char qname[48];
        std::snprintf(qname, sizeof qname, "queue job %lld",
                      static_cast<long long>(e.job));
        raw_event(e, "e", qname, e.parent, "queue", /*counter=*/false);
      }
      raw_event(e, "b", name, e.span != Event::kNone ? e.span : e.job, "job",
                /*counter=*/false);
      return;
    case EventKind::JobComplete:
    case EventKind::JobOomKill:
    case EventKind::JobWalltimeKill:
      std::snprintf(name, sizeof name, "job %lld", static_cast<long long>(e.job));
      raw_event(e, "e", name, e.span != Event::kNone ? e.span : e.job, "job",
                /*counter=*/false);
      // Also keep the instant marker so kill reasons stay visible.
      raw_event(e, "i", to_string(e.kind).data(), Event::kNone, "", false);
      return;
    case EventKind::SchedPass:
      // The pending-queue depth becomes a counter track.
      raw_event(e, "C", "pending_jobs", Event::kNone, "", /*counter=*/true);
      raw_event(e, "i", to_string(e.kind).data(), Event::kNone, "", false);
      return;
    default:
      raw_event(e, "i", to_string(e.kind).data(), Event::kNone, "", false);
      return;
  }
}

void ChromeTraceSink::close() {
  if (closed_) return;
  closed_ = true;
  *out_ << "\n]}\n";
  out_->flush();
  if (!out_->good()) throw Error("Chrome trace sink: stream write failed");
}

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

TraceFormat parse_trace_format(const std::string& value) {
  if (value == "ndjson") return TraceFormat::Ndjson;
  if (value == "chrome") return TraceFormat::Chrome;
  throw ConfigError("unknown trace format '" + value +
                    "' (expected ndjson or chrome)");
}

std::unique_ptr<TraceSink> make_sink(TraceFormat format, std::ostream& out,
                                     std::size_t flush_every) {
  switch (format) {
    case TraceFormat::Ndjson:
      return std::make_unique<NdjsonSink>(out, flush_every);
    case TraceFormat::Chrome:
      return std::make_unique<ChromeTraceSink>(out);
  }
  DMSIM_ASSERT(false, "unknown trace format");
  return nullptr;
}

namespace {

/// Owns the file stream its inner sink writes to.
class FileSink final : public TraceSink {
 public:
  FileSink(TraceFormat format, const std::string& path,
           std::size_t flush_every)
      : path_(path) {
    out_.open(path, std::ios::out | std::ios::trunc);
    if (!out_) throw ConfigError("cannot open trace file " + path);
    inner_ = make_sink(format, out_, flush_every);
  }

  void emit(const Event& event) override { inner_->emit(event); }

  void close() override {
    if (closed_) return;
    closed_ = true;
    inner_->close();
    out_.close();
    if (out_.fail()) throw Error("trace file write failed: " + path_);
  }

 private:
  std::string path_;
  std::ofstream out_;
  std::unique_ptr<TraceSink> inner_;
  bool closed_ = false;
};

}  // namespace

std::unique_ptr<TraceSink> make_file_sink(TraceFormat format,
                                          const std::string& path,
                                          std::size_t flush_every) {
  return std::make_unique<FileSink>(format, path, flush_every);
}

}  // namespace dmsim::obs
