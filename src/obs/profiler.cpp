#include "obs/profiler.hpp"

#include <ostream>
#include <utility>

#include "util/table.hpp"

namespace dmsim::obs {

void Profiler::begin_phase(std::string name) {
  end_phase();
  phases_.push_back(Phase{std::move(name), 0.0});
  phase_start_ = ClockT::now();
  open_ = true;
}

void Profiler::end_phase() {
  if (!open_) return;
  const std::chrono::duration<double> dt = ClockT::now() - phase_start_;
  phases_.back().wall_seconds = dt.count();
  open_ = false;
}

double Profiler::total_seconds() const noexcept {
  double total = 0.0;
  for (const auto& p : phases_) total += p.wall_seconds;
  return total;
}

double Profiler::phase_seconds(std::string_view name) const noexcept {
  double total = 0.0;
  for (const auto& p : phases_) {
    if (p.name == name) total += p.wall_seconds;
  }
  return total;
}

void print_throughput(std::ostream& os, const ThroughputReport& report) {
  os << util::fmt_sci(report.events_per_second(), 3) << " events/s, "
     << util::fmt_sci(report.sim_seconds_per_wall_second(), 3)
     << " sim-s/wall-s (" << report.engine_events << " events, "
     << util::fmt(report.wall_seconds, 3) << " wall-s)\n";
}

}  // namespace dmsim::obs
