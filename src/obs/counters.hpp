// Central counters registry: named monotonic counters and gauges that every
// subsystem registers into (engine events fired, ledger borrows, backfill
// attempts, queue-depth high-water, ...). The registry is the single export
// surface: dmsim_run prints it as a table and embeds it in the JSON result
// document.
//
// Hot-path discipline: components resolve handles (stable pointers into the
// registry) once at wiring time and bump them through a null check, so a run
// without a registry costs one predictable branch per site.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dmsim::obs {

/// A gauge tracks a current value plus its high-water mark.
struct Gauge {
  std::int64_t value = 0;
  std::int64_t high_water = 0;

  void set(std::int64_t v) noexcept {
    value = v;
    if (v > high_water) high_water = v;
  }
};

struct CountersSnapshot {
  struct Counter {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeEntry {
    std::string name;
    std::int64_t value = 0;
    std::int64_t high_water = 0;
  };
  std::vector<Counter> counters;  ///< sorted by name
  std::vector<GaugeEntry> gauges; ///< sorted by name

  [[nodiscard]] bool empty() const noexcept {
    return counters.empty() && gauges.empty();
  }
};

class Counters {
 public:
  Counters() = default;
  Counters(const Counters&) = delete;
  Counters& operator=(const Counters&) = delete;

  /// Find-or-create a monotonic counter. The returned reference is stable
  /// for the registry's lifetime (deque-backed), so it may be cached as a
  /// hot-path handle.
  [[nodiscard]] std::uint64_t& counter(std::string_view name);

  /// Find-or-create a gauge; reference stability as counter().
  [[nodiscard]] Gauge& gauge(std::string_view name);

  /// Convenience mutators for cold paths.
  void add(std::string_view name, std::uint64_t delta = 1) {
    counter(name) += delta;
  }
  void set(std::string_view name, std::int64_t value) {
    gauge(name).set(value);
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return counters_.size() + gauges_.size();
  }

  /// Name-sorted copy of every counter and gauge (deterministic export).
  [[nodiscard]] CountersSnapshot snapshot() const;

  /// Overwrite the registry with a snapshot: every existing entry is zeroed,
  /// then the snapshot's values are applied (creating entries as needed).
  /// Zero-first matters for checkpoint restore — replaying workload
  /// submission before the restore bumps counters that the snapshot's saving
  /// run had already counted, and those must not double.
  void restore(const CountersSnapshot& snap);

 private:
  std::deque<std::pair<std::string, std::uint64_t>> counters_;
  std::deque<std::pair<std::string, Gauge>> gauges_;
  std::unordered_map<std::string_view, std::size_t> counter_index_;
  std::unordered_map<std::string_view, std::size_t> gauge_index_;
};

}  // namespace dmsim::obs
