// Central counters registry: named monotonic counters, gauges, log-bucketed
// histograms and windowed time series that every subsystem registers into
// (engine events fired, ledger borrows, backfill attempts, queue-depth
// high-water, wait-time distributions, ...). The registry is the single
// export surface: dmsim_run prints it as a table and embeds it in the JSON
// result document.
//
// Hot-path discipline: components resolve handles (stable pointers into the
// registry) once at wiring time and bump them through a null check, so a run
// without a registry costs one predictable branch per site.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/units.hpp"

namespace dmsim::obs {

/// A gauge tracks a current value plus its high-water mark.
struct Gauge {
  std::int64_t value = 0;
  std::int64_t high_water = 0;

  void set(std::int64_t v) noexcept {
    value = v;
    if (v > high_water) high_water = v;
  }
};

/// HDR-style log-bucketed histogram of non-negative integer values
/// (latencies in microseconds, sizes in MiB, ...). Values 0..15 land in
/// exact unit buckets; every power-of-two tier above that is split into 8
/// sub-buckets, bounding the relative bucket-width error at 12.5% while
/// covering the full int64 range in kBuckets buckets. All state is integer,
/// so records, snapshots and quantile reads are bit-deterministic.
class Histogram {
 public:
  static constexpr std::uint32_t kUnitBuckets = 16;
  static constexpr std::uint32_t kSubBuckets = 8;   ///< per power-of-two tier
  /// 59 tiers cover msb 4..62 — every positive int64 — and the top tier's
  /// lower bound (15 << 59) still fits in int64 without overflow.
  static constexpr std::uint32_t kBuckets = kUnitBuckets + 59 * kSubBuckets;

  /// Bucket index for a value; negative values clamp into bucket 0.
  [[nodiscard]] static std::uint32_t bucket_index(std::int64_t v) noexcept;
  /// Smallest value mapping into `bucket` (the exported bucket label).
  [[nodiscard]] static std::int64_t bucket_lower_bound(
      std::uint32_t bucket) noexcept;

  void record(std::int64_t v) noexcept {
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (count_ == 1 || v > max_) max_ = v;
    ++buckets_[bucket_index(v)];
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::int64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::int64_t min() const noexcept { return min_; }
  [[nodiscard]] std::int64_t max() const noexcept { return max_; }
  [[nodiscard]] std::uint64_t bucket_count(std::uint32_t bucket) const noexcept {
    return buckets_[bucket];
  }

  /// Approximate quantile (q in [0,1]): the lower bound of the bucket
  /// holding the rank-ceil(q*count) value, clamped to [min, max]. Exact for
  /// values below kUnitBuckets; within one sub-bucket (12.5%) above. Pure
  /// integer walk — deterministic across platforms.
  [[nodiscard]] std::int64_t quantile(double q) const noexcept;

  void reset() noexcept {
    count_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
    buckets_.fill(0);
  }

  /// Replace all state from snapshot fields (out-of-range buckets dropped).
  void restore_state(
      std::uint64_t count, std::int64_t sum, std::int64_t min,
      std::int64_t max,
      const std::vector<std::pair<std::uint32_t, std::uint64_t>>& buckets) noexcept {
    reset();
    count_ = count;
    sum_ = sum;
    min_ = min;
    max_ = max;
    for (const auto& [bucket, n] : buckets) {
      if (bucket < kBuckets) buckets_[bucket] = n;
    }
  }

 private:
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  std::array<std::uint64_t, kBuckets> buckets_{};
};

/// Windowed time series: records aggregate into fixed-width windows of
/// simulated time (count/sum/min/max per window). Discrete-event time is
/// monotonic, so windows append in order; restores replace the whole point
/// vector. Gives "events per N seconds of sim time" style series without
/// any wall-clock nondeterminism.
class TimeSeries {
 public:
  struct Point {
    std::int64_t window = 0;  ///< floor(t / window_width)
    std::uint64_t count = 0;
    std::int64_t sum = 0;
    std::int64_t min = 0;
    std::int64_t max = 0;
  };

  explicit TimeSeries(Seconds window_width = 1.0) noexcept
      : window_width_(window_width > 0.0 ? window_width : 1.0) {}

  void record(Seconds t, std::int64_t v) noexcept;

  [[nodiscard]] Seconds window_width() const noexcept { return window_width_; }
  [[nodiscard]] const std::vector<Point>& points() const noexcept {
    return points_;
  }

  void reset() noexcept { points_.clear(); }
  void assign(Seconds window_width, std::vector<Point> points) {
    window_width_ = window_width > 0.0 ? window_width : 1.0;
    points_ = std::move(points);
  }

 private:
  Seconds window_width_;
  std::vector<Point> points_;
};

struct CountersSnapshot {
  struct Counter {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeEntry {
    std::string name;
    std::int64_t value = 0;
    std::int64_t high_water = 0;
  };
  struct HistogramEntry {
    std::string name;
    std::uint64_t count = 0;
    std::int64_t sum = 0;
    std::int64_t min = 0;
    std::int64_t max = 0;
    /// Occupied buckets only, ascending (bucket index, count).
    std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;
  };
  struct SeriesEntry {
    std::string name;
    Seconds window_width = 1.0;
    std::vector<TimeSeries::Point> points;
  };
  std::vector<Counter> counters;          ///< sorted by name
  std::vector<GaugeEntry> gauges;         ///< sorted by name
  std::vector<HistogramEntry> histograms; ///< sorted by name
  std::vector<SeriesEntry> series;        ///< sorted by name

  [[nodiscard]] bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty() &&
           series.empty();
  }
};

class Counters {
 public:
  Counters() = default;
  Counters(const Counters&) = delete;
  Counters& operator=(const Counters&) = delete;

  /// Find-or-create a monotonic counter. The returned reference is stable
  /// for the registry's lifetime (deque-backed), so it may be cached as a
  /// hot-path handle.
  [[nodiscard]] std::uint64_t& counter(std::string_view name);

  /// Find-or-create a gauge; reference stability as counter().
  [[nodiscard]] Gauge& gauge(std::string_view name);

  /// Find-or-create a histogram; reference stability as counter().
  [[nodiscard]] Histogram& histogram(std::string_view name);

  /// Find-or-create a time series. `window_width` applies only on creation;
  /// later lookups keep the original window.
  [[nodiscard]] TimeSeries& series(std::string_view name,
                                   Seconds window_width = 1.0);

  /// Convenience mutators for cold paths.
  void add(std::string_view name, std::uint64_t delta = 1) {
    counter(name) += delta;
  }
  void set(std::string_view name, std::int64_t value) {
    gauge(name).set(value);
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return counters_.size() + gauges_.size() + histograms_.size() +
           series_.size();
  }

  /// Name-sorted copy of every counter and gauge (deterministic export).
  [[nodiscard]] CountersSnapshot snapshot() const;

  /// Overwrite the registry with a snapshot: every existing entry is zeroed,
  /// then the snapshot's values are applied (creating entries as needed).
  /// Zero-first matters for checkpoint restore — replaying workload
  /// submission before the restore bumps counters that the snapshot's saving
  /// run had already counted, and those must not double.
  void restore(const CountersSnapshot& snap);

 private:
  std::deque<std::pair<std::string, std::uint64_t>> counters_;
  std::deque<std::pair<std::string, Gauge>> gauges_;
  std::deque<std::pair<std::string, Histogram>> histograms_;
  std::deque<std::pair<std::string, TimeSeries>> series_;
  std::unordered_map<std::string_view, std::size_t> counter_index_;
  std::unordered_map<std::string_view, std::size_t> gauge_index_;
  std::unordered_map<std::string_view, std::size_t> histogram_index_;
  std::unordered_map<std::string_view, std::size_t> series_index_;
};

}  // namespace dmsim::obs
