// On-disk format for per-job memory usage traces (paper Fig. 3 steps 8-9:
// "generate usage trace file for every job trace file").
//
// The format is line-oriented text, one block per job:
//
//     # optional comments
//     job <id> <num_points>
//     scales <n> <s0> <s1> ... <sn-1>     (optional, per-node usage factors)
//     <progress> <mem_mib>
//     ...
//
// Progress values are fractions in [0, 1] starting at 0; memory is MiB.
// The optional `scales` line carries per-node usage heterogeneity
// (JobSpec::node_usage_scale). Blocks may appear in any order; duplicate job
// ids are an error.
#pragma once

#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/job_spec.hpp"
#include "trace/usage_trace.hpp"
#include "util/units.hpp"

namespace dmsim::trace {

/// One job's usage data as stored on disk.
struct JobUsage {
  UsageTrace trace;
  std::vector<double> node_scales;  ///< empty = uniform across nodes
};

using UsageTraceMap = std::unordered_map<std::uint32_t, JobUsage>;

/// Serialize usage traces. Jobs are emitted in ascending id order so the
/// output is canonical (diff-able).
void write_usage_traces(std::ostream& out, const UsageTraceMap& traces);
void write_usage_traces_file(const std::string& path, const UsageTraceMap& traces);

/// Parse usage traces. Throws TraceError on malformed input.
[[nodiscard]] UsageTraceMap read_usage_traces(std::istream& in);
[[nodiscard]] UsageTraceMap read_usage_traces_file(const std::string& path);

/// Collect the usage traces of a workload, keyed by job id.
[[nodiscard]] UsageTraceMap collect_usage_traces(const Workload& jobs);

/// Attach traces to a workload in place (jobs without an entry keep their
/// current trace). Returns the number of jobs updated.
std::size_t attach_usage_traces(Workload& jobs, const UsageTraceMap& traces);

}  // namespace dmsim::trace
