#include "trace/usage_trace.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/error.hpp"

namespace dmsim::trace {

UsageTrace::UsageTrace(std::vector<UsagePoint> points)
    : points_(std::move(points)) {
  DMSIM_ASSERT(!points_.empty(), "usage trace must have at least one point");
  DMSIM_ASSERT(points_.front().progress == 0.0,
               "usage trace must start at progress 0");
  double prev = -1.0;
  for (const auto& p : points_) {
    DMSIM_ASSERT(p.progress > prev, "usage trace progress must be increasing");
    DMSIM_ASSERT(p.progress >= 0.0 && p.progress <= 1.0,
                 "usage trace progress out of [0,1]");
    DMSIM_ASSERT(p.mem >= 0, "usage trace memory must be non-negative");
    prev = p.progress;
  }
}

UsageTrace UsageTrace::constant(MiB mem) {
  return UsageTrace({UsagePoint{0.0, mem}});
}

MiB UsageTrace::at(double progress) const noexcept {
  if (points_.empty()) return 0;
  progress = std::clamp(progress, 0.0, 1.0);
  // Last point with .progress <= progress.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), progress,
      [](double v, const UsagePoint& p) { return v < p.progress; });
  DMSIM_ASSERT(it != points_.begin(), "trace starts at 0; lookup cannot precede it");
  return std::prev(it)->mem;
}

MiB UsageTrace::max_in(double from, double to) const noexcept {
  if (points_.empty()) return 0;
  if (from > to) std::swap(from, to);
  from = std::clamp(from, 0.0, 1.0);
  to = std::clamp(to, 0.0, 1.0);
  MiB best = at(from);
  // Interior samples strictly after `from`, at or before `to`.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), from,
      [](double v, const UsagePoint& p) { return v < p.progress; });
  for (; it != points_.end() && it->progress <= to; ++it) {
    best = std::max(best, it->mem);
  }
  return best;
}

MiB UsageTrace::peak() const noexcept {
  MiB best = 0;
  for (const auto& p : points_) best = std::max(best, p.mem);
  return best;
}

double UsageTrace::average() const noexcept {
  if (points_.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const double next =
        (i + 1 < points_.size()) ? points_[i + 1].progress : 1.0;
    acc += static_cast<double>(points_[i].mem) * (next - points_[i].progress);
  }
  return acc;
}

UsageTrace UsageTrace::compressed(double epsilon_mib) const {
  if (points_.size() <= 2) return *this;
  std::vector<double> xs(points_.size());
  std::vector<double> ys(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    xs[i] = points_[i].progress;
    ys[i] = static_cast<double>(points_[i].mem);
  }
  const auto keep = rdp_keep_indices(xs, ys, epsilon_mib);
  std::vector<UsagePoint> out;
  out.reserve(keep.size());
  for (auto idx : keep) out.push_back(points_[idx]);
  return UsageTrace(std::move(out));
}

UsageTrace UsageTrace::scaled(double factor) const {
  DMSIM_ASSERT(factor >= 0.0, "scale factor must be non-negative");
  std::vector<UsagePoint> out(points_.begin(), points_.end());
  for (auto& p : out) {
    p.mem = std::max<MiB>(
        0, static_cast<MiB>(std::llround(static_cast<double>(p.mem) * factor)));
  }
  return UsageTrace(std::move(out));
}

namespace {

/// Perpendicular distance from (px, py) to the segment (x0,y0)-(x1,y1).
/// Progress and memory are different units; RDP here is applied after the
/// caller normalizes (epsilon is expressed in the y unit, with x-extent
/// treated as negligible versus typical epsilon-scaled y ranges — for
/// monotone x this reduces to vertical deviation, which is what trace
/// compression wants).
[[nodiscard]] double deviation(double x0, double y0, double x1, double y1,
                               double px, double py) noexcept {
  const double dx = x1 - x0;
  const double dy = y1 - y0;
  if (dx == 0.0 && dy == 0.0) return std::hypot(px - x0, py - y0);
  // Vertical distance from the point to the chord at px (x is monotone).
  if (dx != 0.0) {
    const double t = (px - x0) / dx;
    const double y_on_chord = y0 + t * dy;
    return std::abs(py - y_on_chord);
  }
  return std::hypot(px - x0, py - y0);
}

void rdp_recurse(std::span<const double> xs, std::span<const double> ys,
                 std::size_t lo, std::size_t hi, double epsilon,
                 std::vector<bool>& keep) {
  if (hi <= lo + 1) return;
  double worst = -1.0;
  std::size_t worst_idx = lo;
  for (std::size_t i = lo + 1; i < hi; ++i) {
    const double d = deviation(xs[lo], ys[lo], xs[hi], ys[hi], xs[i], ys[i]);
    if (d > worst) {
      worst = d;
      worst_idx = i;
    }
  }
  if (worst > epsilon) {
    keep[worst_idx] = true;
    rdp_recurse(xs, ys, lo, worst_idx, epsilon, keep);
    rdp_recurse(xs, ys, worst_idx, hi, epsilon, keep);
  }
}

}  // namespace

std::vector<std::size_t> rdp_keep_indices(std::span<const double> xs,
                                          std::span<const double> ys,
                                          double epsilon) {
  DMSIM_ASSERT(xs.size() == ys.size(), "rdp: xs/ys size mismatch");
  DMSIM_ASSERT(epsilon >= 0.0, "rdp: epsilon must be non-negative");
  const std::size_t n = xs.size();
  std::vector<std::size_t> out;
  if (n == 0) return out;
  if (n <= 2) {
    for (std::size_t i = 0; i < n; ++i) out.push_back(i);
    return out;
  }
  std::vector<bool> keep(n, false);
  keep.front() = true;
  keep.back() = true;
  rdp_recurse(xs, ys, 0, n - 1, epsilon, keep);
  for (std::size_t i = 0; i < n; ++i) {
    if (keep[i]) out.push_back(i);
  }
  return out;
}

}  // namespace dmsim::trace
