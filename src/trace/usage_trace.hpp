// Per-job memory-usage traces.
//
// A usage trace records a job's per-node memory footprint as a function of
// *progress* — the fraction of the job's full-speed work completed, in [0, 1].
// Indexing by progress (rather than wallclock) means that when contention
// stretches a job's execution, its memory phases stretch with it, matching
// the paper's simulator, which advances usage along with job progress (§2.3).
//
// Traces are piecewise-constant: the value at progress p is the value of the
// last sample at or before p. This mirrors how the paper treats the Google
// trace, where the maximum usage over a 5-minute window defines the usage for
// the period between two measurements (§3.2.2).
#pragma once

#include <span>
#include <vector>

#include "util/units.hpp"

namespace dmsim::trace {

struct UsagePoint {
  double progress = 0.0;  ///< fraction of job work completed, in [0, 1]
  MiB mem = 0;            ///< per-node memory footprint from this point on

  friend constexpr bool operator==(const UsagePoint&, const UsagePoint&) = default;
};

class UsageTrace {
 public:
  /// Empty trace: usage is 0 everywhere. Mostly useful as a placeholder.
  UsageTrace() = default;

  /// Points must be sorted by strictly increasing progress, start at
  /// progress 0, lie within [0, 1], and carry non-negative memory.
  explicit UsageTrace(std::vector<UsagePoint> points);

  /// Flat trace using `mem` for the whole job.
  [[nodiscard]] static UsageTrace constant(MiB mem);

  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] std::span<const UsagePoint> points() const noexcept { return points_; }

  /// Usage at a given progress (piecewise constant, clamped to [0, 1]).
  [[nodiscard]] MiB at(double progress) const noexcept;

  /// Maximum usage over the progress interval [from, to]. This is what the
  /// Decider uses as the demand for the next monitoring window.
  [[nodiscard]] MiB max_in(double from, double to) const noexcept;

  /// Peak usage over the whole job — the figure a perfectly informed user
  /// would request (+0% overestimation).
  [[nodiscard]] MiB peak() const noexcept;

  /// Progress-weighted average usage.
  [[nodiscard]] double average() const noexcept;

  /// Lossy compression with the Ramer–Douglas–Peucker algorithm: drop points
  /// whose removal perturbs the polyline by at most `epsilon_mib`.
  [[nodiscard]] UsageTrace compressed(double epsilon_mib) const;

  /// Returns a copy with every memory value scaled by `factor` (rounded,
  /// clamped below at 0). Used to denormalize Google-style traces.
  [[nodiscard]] UsageTrace scaled(double factor) const;

 private:
  std::vector<UsagePoint> points_;
};

/// Generic Ramer–Douglas–Peucker on a polyline given as (x, y) pairs.
/// Returns indices of retained points (always keeps first and last).
[[nodiscard]] std::vector<std::size_t> rdp_keep_indices(
    std::span<const double> xs, std::span<const double> ys, double epsilon);

}  // namespace dmsim::trace
