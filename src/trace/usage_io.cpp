#include "trace/usage_io.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "util/error.hpp"

namespace dmsim::trace {

void write_usage_traces(std::ostream& out, const UsageTraceMap& traces) {
  std::vector<std::uint32_t> ids;
  ids.reserve(traces.size());
  for (const auto& [id, t] : traces) {
    (void)t;
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  out << "# dmsim usage traces: job <id> <num_points>, optional scales line,\n"
         "# then one `progress mem_mib` pair per line\n";
  out.precision(17);
  for (const std::uint32_t id : ids) {
    const JobUsage& usage = traces.at(id);
    out << "job " << id << ' ' << usage.trace.size() << '\n';
    if (!usage.node_scales.empty()) {
      out << "scales " << usage.node_scales.size();
      for (const double s : usage.node_scales) out << ' ' << s;
      out << '\n';
    }
    for (const auto& p : usage.trace.points()) {
      out << p.progress << ' ' << p.mem << '\n';
    }
  }
}

void write_usage_traces_file(const std::string& path,
                             const UsageTraceMap& traces) {
  std::ofstream out(path);
  if (!out) throw TraceError("cannot open usage trace file for writing: " + path);
  write_usage_traces(out, traces);
}

UsageTraceMap read_usage_traces(std::istream& in) {
  UsageTraceMap out;
  std::string line;
  std::size_t line_no = 0;
  std::uint32_t current_id = 0;
  std::size_t remaining = 0;
  bool in_block = false;
  std::vector<UsagePoint> points;
  std::vector<double> scales;

  const auto finish_block = [&] {
    if (!in_block) return;
    if (remaining != 0) {
      throw TraceError("usage trace for job " + std::to_string(current_id) +
                       " ended early (" + std::to_string(remaining) +
                       " points missing)");
    }
    const auto [it, inserted] = out.emplace(
        current_id, JobUsage{UsageTrace(std::move(points)), std::move(scales)});
    (void)it;
    if (!inserted) {
      throw TraceError("duplicate usage trace for job " +
                       std::to_string(current_id));
    }
    points = {};
    scales = {};
    in_block = false;
  };

  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    std::istringstream fields(line);
    std::string head;
    fields >> head;
    if (head == "job") {
      finish_block();
      std::int64_t id = -1;
      std::int64_t count = -1;
      if (!(fields >> id >> count) || id < 0 || count <= 0) {
        throw TraceError("usage trace line " + std::to_string(line_no) +
                         ": malformed job header");
      }
      current_id = static_cast<std::uint32_t>(id);
      remaining = static_cast<std::size_t>(count);
      points.reserve(remaining);
      in_block = true;
      continue;
    }
    if (head == "scales") {
      if (!in_block || !points.empty()) {
        throw TraceError("usage trace line " + std::to_string(line_no) +
                         ": scales must follow the job header");
      }
      std::size_t n = 0;
      if (!(fields >> n) || n == 0) {
        throw TraceError("usage trace line " + std::to_string(line_no) +
                         ": malformed scales header");
      }
      scales.resize(n);
      for (auto& s : scales) {
        if (!(fields >> s) || s <= 0.0 || s > 1.0) {
          throw TraceError("usage trace line " + std::to_string(line_no) +
                           ": scale factors must be in (0, 1]");
        }
      }
      continue;
    }
    if (!in_block || remaining == 0) {
      throw TraceError("usage trace line " + std::to_string(line_no) +
                       ": data point outside a job block");
    }
    UsagePoint p;
    std::istringstream point_fields(line);
    if (!(point_fields >> p.progress >> p.mem)) {
      throw TraceError("usage trace line " + std::to_string(line_no) +
                       ": malformed data point");
    }
    points.push_back(p);
    --remaining;
  }
  finish_block();
  return out;
}

UsageTraceMap read_usage_traces_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw TraceError("cannot open usage trace file: " + path);
  return read_usage_traces(in);
}

UsageTraceMap collect_usage_traces(const Workload& jobs) {
  UsageTraceMap out;
  out.reserve(jobs.size());
  for (const auto& j : jobs) {
    DMSIM_ASSERT(j.id.valid(), "workload job without id");
    const auto [it, inserted] =
        out.emplace(j.id.get(), JobUsage{j.usage, j.node_usage_scale});
    (void)it;
    DMSIM_ASSERT(inserted, "duplicate job id while collecting usage traces");
  }
  return out;
}

std::size_t attach_usage_traces(Workload& jobs, const UsageTraceMap& traces) {
  std::size_t updated = 0;
  for (auto& j : jobs) {
    const auto it = traces.find(j.id.get());
    if (it != traces.end()) {
      j.usage = it->second.trace;
      j.node_usage_scale = it->second.node_scales;
      ++updated;
    }
  }
  return updated;
}

}  // namespace dmsim::trace
