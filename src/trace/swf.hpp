// Standard Workload Format (SWF) v2 reader/writer.
//
// The Slurm simulator consumes job traces in SWF (Feitelson's format, see
// https://www.cs.huji.ac.il/labs/parallel/workload/swf.html): one line per
// job with 18 whitespace-separated fields, `;` comment lines, and -1 for
// unknown values. We implement the full record and a lossy conversion to/from
// dmsim JobSpec (SWF has no memory-over-time channel; that arrives separately
// as usage traces, exactly as in the paper's toolchain).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/job_spec.hpp"
#include "util/units.hpp"

namespace dmsim::trace {

/// One SWF record; field names follow the SWF standard. -1 == unknown.
struct SwfRecord {
  std::int64_t job_number = -1;
  double submit_time = -1;        // seconds since trace start
  double wait_time = -1;          // seconds
  double run_time = -1;           // seconds
  std::int64_t allocated_procs = -1;
  double avg_cpu_time = -1;
  std::int64_t used_memory_kb = -1;      // per processor
  std::int64_t requested_procs = -1;
  double requested_time = -1;
  std::int64_t requested_memory_kb = -1;  // per processor
  std::int64_t status = -1;               // 1 = completed OK
  std::int64_t user_id = -1;
  std::int64_t group_id = -1;
  std::int64_t executable = -1;
  std::int64_t queue = -1;
  std::int64_t partition = -1;
  std::int64_t preceding_job = -1;
  double think_time = -1;

  friend bool operator==(const SwfRecord&, const SwfRecord&) = default;
};

struct SwfTrace {
  std::vector<std::string> header_comments;  // lines without leading ';'
  std::vector<SwfRecord> records;
};

/// Parse SWF from a stream. Throws TraceError on malformed lines.
[[nodiscard]] SwfTrace read_swf(std::istream& in);
[[nodiscard]] SwfTrace read_swf_file(const std::string& path);

/// Serialize to SWF text.
void write_swf(std::ostream& out, const SwfTrace& trace);
void write_swf_file(const std::string& path, const SwfTrace& trace);

/// Convert a workload to SWF records (procs = nodes * cores_per_node;
/// memory reported per processor as SWF requires).
[[nodiscard]] SwfTrace to_swf(const Workload& jobs, int cores_per_node);

/// Build JobSpecs from SWF records. Usage traces are set to a constant at
/// the requested memory (callers attach real usage traces afterwards).
[[nodiscard]] Workload from_swf(const SwfTrace& trace, int cores_per_node);

}  // namespace dmsim::trace
