// SWF trace validation: structural checks producing human-readable warnings
// rather than exceptions, for vetting third-party traces before simulation.
#pragma once

#include <string>
#include <vector>

#include "trace/swf.hpp"

namespace dmsim::trace {

enum class SwfIssueKind {
  DuplicateJobNumber,
  NonMonotonicSubmit,   ///< submit times not sorted (SWF requires ascending)
  MissingRuntime,       ///< neither run_time nor requested_time usable
  MissingProcs,         ///< neither allocated nor requested processors
  NegativeField,        ///< a field that must be non-negative is negative
  WalltimeBelowRuntime, ///< requested_time < run_time (job would be killed)
};

struct SwfIssue {
  SwfIssueKind kind;
  std::size_t record_index = 0;  ///< index into SwfTrace::records
  std::int64_t job_number = -1;
  std::string message;
};

/// Validate a parsed trace. Returns all issues found (empty = clean).
[[nodiscard]] std::vector<SwfIssue> validate_swf(const SwfTrace& trace);

/// True if the trace has no issues that would break a simulation (duplicate
/// ids, missing runtime/procs). Warnings-only traces pass.
[[nodiscard]] bool swf_simulatable(const std::vector<SwfIssue>& issues) noexcept;

[[nodiscard]] std::string_view to_string(SwfIssueKind kind) noexcept;

}  // namespace dmsim::trace
