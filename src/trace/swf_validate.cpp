#include "trace/swf_validate.hpp"

#include <unordered_set>

namespace dmsim::trace {

std::string_view to_string(SwfIssueKind kind) noexcept {
  switch (kind) {
    case SwfIssueKind::DuplicateJobNumber:
      return "duplicate job number";
    case SwfIssueKind::NonMonotonicSubmit:
      return "submit times not ascending";
    case SwfIssueKind::MissingRuntime:
      return "no usable runtime";
    case SwfIssueKind::MissingProcs:
      return "no processor count";
    case SwfIssueKind::NegativeField:
      return "negative field";
    case SwfIssueKind::WalltimeBelowRuntime:
      return "requested time below runtime";
  }
  return "unknown";
}

std::vector<SwfIssue> validate_swf(const SwfTrace& trace) {
  std::vector<SwfIssue> issues;
  const auto add = [&](SwfIssueKind kind, std::size_t idx,
                       std::int64_t job, std::string msg) {
    issues.push_back(SwfIssue{kind, idx, job, std::move(msg)});
  };

  std::unordered_set<std::int64_t> seen;
  double prev_submit = -1.0;
  for (std::size_t i = 0; i < trace.records.size(); ++i) {
    const SwfRecord& r = trace.records[i];
    if (r.job_number >= 0 && !seen.insert(r.job_number).second) {
      add(SwfIssueKind::DuplicateJobNumber, i, r.job_number,
          "job " + std::to_string(r.job_number) + " appears more than once");
    }
    if (r.submit_time >= 0) {
      if (r.submit_time < prev_submit) {
        add(SwfIssueKind::NonMonotonicSubmit, i, r.job_number,
            "submit " + std::to_string(r.submit_time) + " after " +
                std::to_string(prev_submit));
      }
      prev_submit = r.submit_time;
    }
    if (r.run_time < 0 && r.requested_time < 0) {
      add(SwfIssueKind::MissingRuntime, i, r.job_number,
          "record has neither run_time nor requested_time");
    }
    if (r.allocated_procs <= 0 && r.requested_procs <= 0) {
      add(SwfIssueKind::MissingProcs, i, r.job_number,
          "record has neither allocated nor requested processors");
    }
    // Fields that are either -1 (unknown) or non-negative.
    const auto check_non_negative = [&](double v, const char* name) {
      if (v < 0 && v != -1) {
        add(SwfIssueKind::NegativeField, i, r.job_number,
            std::string(name) + " is negative");
      }
    };
    check_non_negative(r.submit_time, "submit_time");
    check_non_negative(r.run_time, "run_time");
    check_non_negative(r.requested_time, "requested_time");
    check_non_negative(static_cast<double>(r.used_memory_kb), "used_memory");
    check_non_negative(static_cast<double>(r.requested_memory_kb),
                       "requested_memory");
    if (r.run_time > 0 && r.requested_time > 0 &&
        r.requested_time < r.run_time) {
      add(SwfIssueKind::WalltimeBelowRuntime, i, r.job_number,
          "requested_time " + std::to_string(r.requested_time) +
              " < run_time " + std::to_string(r.run_time));
    }
  }
  return issues;
}

bool swf_simulatable(const std::vector<SwfIssue>& issues) noexcept {
  for (const auto& issue : issues) {
    switch (issue.kind) {
      case SwfIssueKind::DuplicateJobNumber:
      case SwfIssueKind::MissingRuntime:
      case SwfIssueKind::MissingProcs:
        return false;
      default:
        break;
    }
  }
  return true;
}

}  // namespace dmsim::trace
