// JobSpec: the static description of a job as the scheduler sees it at
// submission time, plus the (simulator-only) ground-truth usage trace.
//
// The scheduler and allocation policies may read everything except `usage`,
// which in a real system would be observed online by the Monitor; here the
// simulator replays it (paper §2.3: the Decider receives memory usage from
// the offline usage trace rather than from the cluster nodes).
#pragma once

#include <cstdint>
#include <vector>

#include "trace/usage_trace.hpp"
#include "util/units.hpp"

namespace dmsim::trace {

struct JobSpec {
  JobId id{};
  Seconds submit_time = 0.0;

  /// Number of (exclusively allocated) nodes the job needs.
  int num_nodes = 1;

  /// Memory the user requested per node — the figure the static policy
  /// allocates for the whole job lifetime. Includes any overestimation.
  MiB requested_mem = 0;

  /// Full-speed runtime: the wallclock the job would take with all-local
  /// memory and no contention. Slowdowns stretch this.
  Seconds duration = 0.0;

  /// User-requested time limit; used by backfill for reservations.
  Seconds walltime = 0.0;

  /// Ground-truth per-node memory usage as a function of progress. This is
  /// the footprint of the job's heaviest node (typically rank 0).
  UsageTrace usage;

  /// Optional per-node usage heterogeneity: node i of the job consumes
  /// usage * node_usage_scale[i], with factors in (0, 1]. Empty means all
  /// nodes track `usage` uniformly. LDMS-style data is per node; rank-0
  /// heavy jobs are common, and the dynamic policy reclaims the difference
  /// on the lighter nodes.
  std::vector<double> node_usage_scale;

  /// Index of the matched application profile in the app pool (slowdown
  /// model inputs); negative = unmatched (treated as insensitive).
  int app_profile = -1;

  /// SWF dependency fields: this job may only be considered for scheduling
  /// `think_time` seconds after `preceding_job` reaches a terminal state
  /// (and never before its own submit_time). Invalid id = no dependency.
  JobId preceding_job{};
  Seconds think_time = 0.0;

  /// Usage scale of the job's i-th node (1.0 when uniform).
  [[nodiscard]] double usage_scale(std::size_t node_index) const noexcept {
    if (node_index < node_usage_scale.size()) {
      return node_usage_scale[node_index];
    }
    return 1.0;
  }

  /// True peak per-node usage (the heaviest node); convenience over
  /// usage.peak().
  [[nodiscard]] MiB peak_usage() const noexcept { return usage.peak(); }

  /// Node-hours at full speed (the paper's size metric in Table 3).
  [[nodiscard]] double node_seconds() const noexcept {
    return static_cast<double>(num_nodes) * duration;
  }
};

using Workload = std::vector<JobSpec>;

}  // namespace dmsim::trace
