// Ablations over the design choices DESIGN.md calls out:
//   (1) Monitor update interval (the paper fixes 5 min, noting the
//       responsiveness/overhead trade-off),
//   (2) out-of-memory handling: Fail/Restart vs Checkpoint/Restart (§2.2
//       argues F/R suffices because OOM is rare),
//   (3) lender selection when borrowing remote memory,
//   (4) the fairness mitigation (guaranteed allocation after N failures).
// All on the stress cell: 50% large jobs, +60% overestimation,
// underprovisioned (25% large nodes).
#include "bench_common.hpp"
#include "util/stats.hpp"

namespace {

using namespace dmsim;

struct Row {
  std::string name;
  bench::Runner::Handle handle;
};

struct Block {
  std::string title;
  std::vector<Row> rows;
};

void print_block(const bench::Runner& runner, const Block& block) {
  util::TextTable table(block.title);
  table.set_header({"variant", "throughput(jobs/s)", "median resp(s)",
                    "oom events", "requeues", "updates"});
  for (const auto& r : block.rows) {
    const harness::CellResult& result = runner.get(r.handle);
    if (!result.valid) {
      table.add_row({r.name, "-", "-", "-", "-", "-"});
      continue;
    }
    const util::Ecdf ecdf(result.summary.response_times);
    table.add_row({
        r.name,
        util::fmt_sci(result.throughput(), 3),
        util::fmt(ecdf.empty() ? 0.0 : ecdf.quantile(0.5), 0),
        std::to_string(result.totals.oom_events),
        std::to_string(result.totals.requeues),
        std::to_string(result.totals.update_events),
    });
  }
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  bench::print_scale_banner(opts, "Ablations — policy design choices");
  bench::WorkloadCache cache(opts.scale);
  bench::Runner runner("ablation_policy", opts);
  const auto& w = cache.get(0.5, 0.6);
  const auto& hot = cache.get(1.0, 1.0);

  harness::SystemConfig sys;
  sys.total_nodes = opts.scale.synth_nodes;
  sys.pct_large_nodes = 0.25;

  std::vector<Block> blocks;
  const auto add = [&](Block& block, std::string name,
                       const harness::SystemConfig& system,
                       const sched::SchedulerConfig& sched,
                       const trace::Workload& jobs,
                       const slowdown::AppPool& apps) {
    block.rows.push_back({name, runner.add(system, policy::PolicyKind::Dynamic,
                                           jobs, apps, name, sched)});
  };

  // (1) Update interval sweep.
  {
    Block block{"Ablation 1 | Monitor update interval (paper: 5 min)", {}};
    for (const double interval : {60.0, 300.0, 900.0, 1800.0, 3600.0}) {
      sched::SchedulerConfig sched;
      sched.update_interval = interval;
      add(block, util::fmt(interval / 60.0, 0) + " min", sys, sched, w.jobs,
          w.apps);
    }
    blocks.push_back(std::move(block));
  }

  // (2) F/R vs C/R on a hot cell (100% large, +100% overestimation, 50%
  // memory — the paper's worst-case scenario for OOM frequency).
  {
    harness::SystemConfig hot_sys;
    hot_sys.total_nodes = opts.scale.synth_nodes;
    hot_sys.pct_large_nodes = 0.5;
    Block block{
        "Ablation 2 | OOM handling on the worst case (100% large, +100%, 50% sys)",
        {}};
    for (const auto handling :
         {sched::OomHandling::FailRestart, sched::OomHandling::CheckpointRestart}) {
      sched::SchedulerConfig sched;
      sched.oom_handling = handling;
      const char* name = handling == sched::OomHandling::FailRestart
                             ? "Fail/Restart"
                             : "Checkpoint/Restart";
      add(block, name, hot_sys, sched, hot.jobs, hot.apps);
    }
    blocks.push_back(std::move(block));
  }

  // (3) Lender selection policy.
  {
    Block block{"Ablation 3 | lender selection for remote borrowing", {}};
    for (const auto& [name, lp] :
         {std::pair{"memory-nodes-first", cluster::LenderPolicy::MemoryNodesFirst},
          {"most-free", cluster::LenderPolicy::MostFree},
          {"least-free", cluster::LenderPolicy::LeastFree}}) {
      harness::SystemConfig lender_sys = sys;
      lender_sys.lender_policy = lp;
      add(block, name, lender_sys, {}, w.jobs, w.apps);
    }
    blocks.push_back(std::move(block));
  }

  // (4) Fairness mitigation.
  {
    Block block{"Ablation 4 | guaranteed allocation after N OOM failures", {}};
    for (const int after : {0, 1, 3, 10}) {
      sched::SchedulerConfig sched;
      sched.guaranteed_after_failures = after;
      add(block, after == 0 ? "off" : ("after " + std::to_string(after)), sys,
          sched, w.jobs, w.apps);
    }
    blocks.push_back(std::move(block));
  }

  // (5) Update delivery: per-job staggered monitors vs the simulator's
  // global batch timer (§2.3).
  {
    Block block{"Ablation 5 | Monitor update delivery mode", {}};
    for (const auto& [name, mode] :
         {std::pair{"per-job staggered", sched::UpdateMode::PerJobStaggered},
          {"global batch", sched::UpdateMode::GlobalBatch}}) {
      sched::SchedulerConfig sched;
      sched.update_mode = mode;
      add(block, name, sys, sched, w.jobs, w.apps);
    }
    blocks.push_back(std::move(block));
  }

  // (6) Priority boost per failure (§2.2 alternative mitigation).
  {
    Block block{"Ablation 6 | priority boost per OOM failure", {}};
    for (const int boost : {0, 1, 5}) {
      sched::SchedulerConfig sched;
      sched.priority_boost_per_failure = boost;
      sched.guaranteed_after_failures = 0;
      add(block, boost == 0 ? "off" : ("+" + std::to_string(boost) + "/fail"),
          sys, sched, w.jobs, w.apps);
    }
    blocks.push_back(std::move(block));
  }

  // (7) Backfill flavour (paper uses Slurm's EASY-style backfill).
  {
    Block block{"Ablation 7 | backfill flavour", {}};
    for (const auto& [name, mode] :
         {std::pair{"off", sched::BackfillMode::Off},
          {"easy (paper)", sched::BackfillMode::Easy},
          {"conservative", sched::BackfillMode::Conservative}}) {
      sched::SchedulerConfig sched;
      sched.backfill_mode = mode;
      add(block, name, sys, sched, w.jobs, w.apps);
    }
    blocks.push_back(std::move(block));
  }

  runner.run();

  for (std::size_t b = 0; b < blocks.size(); ++b) {
    print_block(runner, blocks[b]);
    if (b == 1) {  // ablation 2 footnote: OOM frequency under F/R
      const harness::CellResult& fr = runner.get(blocks[b].rows[0].handle);
      if (fr.valid) {
        std::cout << "OOM job fraction under F/R: "
                  << util::fmt_pct(fr.summary.oom_job_fraction(), 2)
                  << " (paper SS2.2: < 1% of jobs)\n\n";
      }
    }
  }
  runner.finish();
  return 0;
}
