// Ablations over the design choices DESIGN.md calls out:
//   (1) Monitor update interval (the paper fixes 5 min, noting the
//       responsiveness/overhead trade-off),
//   (2) out-of-memory handling: Fail/Restart vs Checkpoint/Restart (§2.2
//       argues F/R suffices because OOM is rare),
//   (3) lender selection when borrowing remote memory,
//   (4) the fairness mitigation (guaranteed allocation after N failures).
// All on the stress cell: 50% large jobs, +60% overestimation,
// underprovisioned (25% large nodes).
#include "bench_common.hpp"
#include "util/stats.hpp"

namespace {

using namespace dmsim;

struct Row {
  std::string name;
  harness::CellResult result;
};

void print_rows(const std::string& title, const std::vector<Row>& rows) {
  util::TextTable table(title);
  table.set_header({"variant", "throughput(jobs/s)", "median resp(s)",
                    "oom events", "requeues", "updates"});
  for (const auto& r : rows) {
    if (!r.result.valid) {
      table.add_row({r.name, "-", "-", "-", "-", "-"});
      continue;
    }
    const util::Ecdf ecdf(r.result.summary.response_times);
    table.add_row({
        r.name,
        util::fmt_sci(r.result.throughput(), 3),
        util::fmt(ecdf.empty() ? 0.0 : ecdf.quantile(0.5), 0),
        std::to_string(r.result.totals.oom_events),
        std::to_string(r.result.totals.requeues),
        std::to_string(r.result.totals.update_events),
    });
  }
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = bench::parse_scale(argc, argv);
  bench::print_scale_banner(scale, "Ablations — policy design choices");
  bench::WorkloadCache cache(scale);
  const auto& w = cache.get(0.5, 0.6);

  harness::SystemConfig sys;
  sys.total_nodes = scale.synth_nodes;
  sys.pct_large_nodes = 0.25;

  // (1) Update interval sweep.
  {
    std::vector<Row> rows;
    for (const double interval : {60.0, 300.0, 900.0, 1800.0, 3600.0}) {
      harness::CellConfig cell;
      cell.system = sys;
      cell.policy = policy::PolicyKind::Dynamic;
      cell.sched.update_interval = interval;
      rows.push_back({util::fmt(interval / 60.0, 0) + " min",
                      harness::run_cell(cell, w.jobs, w.apps)});
    }
    print_rows("Ablation 1 | Monitor update interval (paper: 5 min)", rows);
  }

  // (2) F/R vs C/R on a hot cell (100% large, +100% overestimation, 50%
  // memory — the paper's worst-case scenario for OOM frequency).
  {
    const auto& hot = cache.get(1.0, 1.0);
    harness::SystemConfig hot_sys;
    hot_sys.total_nodes = scale.synth_nodes;
    hot_sys.pct_large_nodes = 0.5;
    std::vector<Row> rows;
    for (const auto handling :
         {sched::OomHandling::FailRestart, sched::OomHandling::CheckpointRestart}) {
      harness::CellConfig cell;
      cell.system = hot_sys;
      cell.policy = policy::PolicyKind::Dynamic;
      cell.sched.oom_handling = handling;
      const char* name =
          handling == sched::OomHandling::FailRestart ? "Fail/Restart" : "Checkpoint/Restart";
      rows.push_back({name, harness::run_cell(cell, hot.jobs, hot.apps)});
    }
    print_rows(
        "Ablation 2 | OOM handling on the worst case (100% large, +100%, 50% sys)",
        rows);
    if (rows[0].result.valid) {
      std::cout << "OOM job fraction under F/R: "
                << util::fmt_pct(rows[0].result.summary.oom_job_fraction(), 2)
                << " (paper SS2.2: < 1% of jobs)\n\n";
    }
  }

  // (3) Lender selection policy.
  {
    std::vector<Row> rows;
    for (const auto& [name, lp] :
         {std::pair{"memory-nodes-first", cluster::LenderPolicy::MemoryNodesFirst},
          {"most-free", cluster::LenderPolicy::MostFree},
          {"least-free", cluster::LenderPolicy::LeastFree}}) {
      harness::CellConfig cell;
      cell.system = sys;
      cell.system.lender_policy = lp;
      cell.policy = policy::PolicyKind::Dynamic;
      rows.push_back({name, harness::run_cell(cell, w.jobs, w.apps)});
    }
    print_rows("Ablation 3 | lender selection for remote borrowing", rows);
  }

  // (4) Fairness mitigation.
  {
    std::vector<Row> rows;
    for (const int after : {0, 1, 3, 10}) {
      harness::CellConfig cell;
      cell.system = sys;
      cell.policy = policy::PolicyKind::Dynamic;
      cell.sched.guaranteed_after_failures = after;
      rows.push_back({after == 0 ? "off" : ("after " + std::to_string(after)),
                      harness::run_cell(cell, w.jobs, w.apps)});
    }
    print_rows("Ablation 4 | guaranteed allocation after N OOM failures", rows);
  }

  // (5) Update delivery: per-job staggered monitors vs the simulator's
  // global batch timer (§2.3).
  {
    std::vector<Row> rows;
    for (const auto& [name, mode] :
         {std::pair{"per-job staggered", sched::UpdateMode::PerJobStaggered},
          {"global batch", sched::UpdateMode::GlobalBatch}}) {
      harness::CellConfig cell;
      cell.system = sys;
      cell.policy = policy::PolicyKind::Dynamic;
      cell.sched.update_mode = mode;
      rows.push_back({name, harness::run_cell(cell, w.jobs, w.apps)});
    }
    print_rows("Ablation 5 | Monitor update delivery mode", rows);
  }

  // (6) Priority boost per failure (§2.2 alternative mitigation).
  {
    std::vector<Row> rows;
    for (const int boost : {0, 1, 5}) {
      harness::CellConfig cell;
      cell.system = sys;
      cell.policy = policy::PolicyKind::Dynamic;
      cell.sched.priority_boost_per_failure = boost;
      cell.sched.guaranteed_after_failures = 0;
      rows.push_back({boost == 0 ? "off" : ("+" + std::to_string(boost) + "/fail"),
                      harness::run_cell(cell, w.jobs, w.apps)});
    }
    print_rows("Ablation 6 | priority boost per OOM failure", rows);
  }

  // (7) Backfill flavour (paper uses Slurm's EASY-style backfill).
  {
    std::vector<Row> rows;
    for (const auto& [name, mode] :
         {std::pair{"off", sched::BackfillMode::Off},
          {"easy (paper)", sched::BackfillMode::Easy},
          {"conservative", sched::BackfillMode::Conservative}}) {
      harness::CellConfig cell;
      cell.system = sys;
      cell.policy = policy::PolicyKind::Dynamic;
      cell.sched.backfill_mode = mode;
      rows.push_back({name, harness::run_cell(cell, w.jobs, w.apps)});
    }
    print_rows("Ablation 7 | backfill flavour", rows);
  }
  dmsim::bench::print_throughput_tally();
  return 0;
}
