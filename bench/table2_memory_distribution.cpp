// Table 2: maximum memory usage per node as a percentage of jobs, split by
// job size (small <= 32 nodes, large > 32 nodes), for the synthetic and
// Grizzly-style traces. Paper values are printed beside the measured ones.
#include "bench_common.hpp"
#include "util/stats.hpp"
#include "workload/archer.hpp"

namespace {

using namespace dmsim;

constexpr const char* kBucketNames[] = {"(0,12)", "[12,24)", "[24,48)",
                                        "[48,96)", "[96,128)"};

util::Histogram bucket_histogram() {
  return util::Histogram(
      {0.0, 12.0 * 1024, 24.0 * 1024, 48.0 * 1024, 96.0 * 1024, 128.0 * 1024});
}

struct Split {
  util::Histogram all = bucket_histogram();
  util::Histogram small = bucket_histogram();
  util::Histogram large = bucket_histogram();

  void add(int nodes, MiB peak) {
    const auto v = static_cast<double>(peak);
    all.add(v);
    (nodes <= 32 ? small : large).add(v);
  }
};

void print_split(const std::string& title, const Split& split,
                 workload::TraceFamily paper_family) {
  util::TextTable table(title);
  table.set_header({"max mem (GB/node)", "all%", "paper", "small%", "paper",
                    "large%", "paper"});
  const auto p_all =
      workload::memory_bucket_percentages(paper_family, workload::SizeClass::All);
  const auto p_small = workload::memory_bucket_percentages(
      paper_family, workload::SizeClass::Small);
  const auto p_large = workload::memory_bucket_percentages(
      paper_family, workload::SizeClass::Large);
  for (std::size_t b = 0; b < 5; ++b) {
    table.add_row({
        kBucketNames[b],
        util::fmt(split.all.fraction(b) * 100.0, 1),
        util::fmt(p_all[b], 1),
        util::fmt(split.small.fraction(b) * 100.0, 1),
        util::fmt(p_small[b], 1),
        util::fmt(split.large.fraction(b) * 100.0, 1),
        util::fmt(p_large[b], 1),
    });
  }
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  const auto& scale = opts.scale;
  bench::print_scale_banner(opts,
                            "Table 2 — max memory usage per node distribution");

  // Synthetic trace at the paper's base mix. The published synthetic column
  // reflects a mostly-normal-memory workload; ~9% of jobs exceed 48 GB/node
  // in Table 2, consistent with a small large-memory share.
  bench::WorkloadCache cache(scale);
  Split synth;
  const auto& w = cache.get(0.10, 0.0);
  for (const auto& j : w.jobs) synth.add(j.num_nodes, j.peak_usage());
  print_split("Table 2 | synthetic trace (10% large-memory mix)", synth,
              workload::TraceFamily::Synthetic);

  // Grizzly-style trace: aggregate all generated weeks.
  workload::GrizzlyConfig gcfg;
  gcfg.weeks = scale.grizzly_weeks;
  gcfg.system_nodes = scale.grizzly_nodes;
  gcfg.max_job_nodes = scale.grizzly_max_job_nodes;
  gcfg.seed = scale.seed;
  const workload::GrizzlyTrace trace = workload::generate_grizzly(gcfg);
  Split grizzly;
  for (const auto& week : trace.weeks) {
    const trace::Workload jobs =
        materialize_grizzly_week(gcfg, trace, week.index);
    for (const auto& j : jobs) grizzly.add(j.num_nodes, j.peak_usage());
  }
  print_split("Table 2 | Grizzly-style trace (all weeks)", grizzly,
              workload::TraceFamily::Grizzly);

  std::cout << "Paper columns are encoded from Table 2; the Grizzly-style\n"
               "trace samples them directly, so measured == paper up to\n"
               "sampling noise. The synthetic columns emerge from the\n"
               "Table 3 class-conditional peak distributions.\n";
  bench::finish_bench("table2_memory_distribution", opts);
  return 0;
}
