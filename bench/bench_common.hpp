// Shared plumbing for the table/figure reproduction binaries.
//
// Every bench accepts:
//   --full        run at the paper's scale (1024-node synthetic system,
//                 1490-node Grizzly system); the default is a reduced scale
//                 tuned for a single-core CI box — the result *shapes* (who
//                 wins, by what factor, where crossovers sit) are preserved,
//                 which is the reproduction target (see EXPERIMENTS.md)
//   --threads N   worker threads for the cell sweep (0/default = all
//                 hardware threads, 1 = serial); the figure output is
//                 byte-identical at any setting
//   --json FILE   machine-readable perf report (per-cell and aggregate
//                 events/sec, wall seconds, sim-time speedup) for
//                 trajectory tracking across commits
//
// Cells run through bench::Runner, a thin deferred-execution wrapper over
// harness::SweepRunner: benches enqueue every cell up front (add), fan out
// once (run), then format tables from the in-order results (get).
#pragma once

#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/dmsim.hpp"
#include "metrics/json_export.hpp"
#include "util/table.hpp"

namespace dmsim::bench {

/// Process-wide simulator-throughput tally across every cell a bench runs,
/// including cells executed inside harness library drivers. Merges may come
/// from sweep worker threads, so the accumulator is mutex-guarded.
class ThroughputTally {
 public:
  void merge(const obs::ThroughputReport& report) {
    const std::lock_guard<std::mutex> lock(mutex_);
    report_.engine_events += report.engine_events;
    report_.sim_seconds += report.sim_seconds;
    report_.wall_seconds += report.wall_seconds;
  }

  [[nodiscard]] obs::ThroughputReport snapshot() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return report_;
  }

 private:
  mutable std::mutex mutex_;
  obs::ThroughputReport report_;
};

inline ThroughputTally& throughput_tally() {
  static ThroughputTally tally;
  return tally;
}

inline void print_throughput_tally(std::ostream& os = std::cout) {
  const obs::ThroughputReport tally = throughput_tally().snapshot();
  if (tally.engine_events == 0) return;
  os << "\n# simulator throughput: ";
  obs::print_throughput(os, tally);
}

struct Scale {
  bool full = false;
  int synth_nodes = 384;
  std::size_t synth_jobs = 768;
  int synth_max_job_nodes = 48;
  int grizzly_nodes = 256;
  int grizzly_max_job_nodes = 48;
  int grizzly_weeks = 16;
  std::uint64_t seed = 42;
};

struct Options {
  Scale scale;
  std::size_t threads = 0;  ///< sweep workers; 0 = hardware concurrency
  std::string json_path;    ///< --json FILE perf report (empty = none)
  bool progress = false;    ///< --progress: live per-cell lines on stderr
};

[[nodiscard]] inline Options parse_options(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      opts.scale.full = true;
      opts.scale.synth_nodes = 1024;
      opts.scale.synth_jobs = 2048;
      opts.scale.synth_max_job_nodes = 128;
      opts.scale.grizzly_nodes = 1490;
      opts.scale.grizzly_max_job_nodes = 128;
      opts.scale.grizzly_weeks = 52;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      opts.threads = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      opts.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--progress") == 0) {
      opts.progress = true;
    }
  }
  return opts;
}

/// Back-compat shim for callers that only need the scale knobs.
[[nodiscard]] inline Scale parse_scale(int argc, char** argv) {
  return parse_options(argc, argv).scale;
}

/// Per-cell perf sample for the --json report.
struct CellPerf {
  std::string label;
  bool valid = false;
  std::uint64_t engine_events = 0;
  double wall_seconds = 0.0;
  double sim_seconds = 0.0;
};

/// Write the machine-readable perf report: per-cell samples plus the
/// process-wide tally (which also covers harness library sweeps). Returns
/// false (with a stderr note) if the file cannot be written.
inline bool write_json_report(const std::string& bench_name,
                              const Options& opts,
                              const std::vector<CellPerf>& cells) {
  metrics::JsonWriter w;
  w.begin_object();
  w.key("bench").value(bench_name);
  w.key("scale").value(opts.scale.full ? "full" : "reduced");
  w.key("threads").value(static_cast<std::uint64_t>(opts.threads));
  w.key("cells").begin_array();
  for (const CellPerf& cell : cells) {
    w.begin_object();
    w.key("label").value(cell.label);
    w.key("valid").value(cell.valid);
    w.key("engine_events").value(cell.engine_events);
    w.key("wall_seconds").value(cell.wall_seconds);
    w.key("sim_seconds").value(cell.sim_seconds);
    w.key("events_per_second")
        .value(cell.wall_seconds > 0.0
                   ? static_cast<double>(cell.engine_events) / cell.wall_seconds
                   : 0.0);
    w.key("sim_speedup")
        .value(cell.wall_seconds > 0.0 ? cell.sim_seconds / cell.wall_seconds
                                       : 0.0);
    w.end_object();
  }
  w.end_array();
  const obs::ThroughputReport tally = throughput_tally().snapshot();
  w.key("aggregate").begin_object();
  w.key("engine_events").value(tally.engine_events);
  w.key("wall_seconds").value(tally.wall_seconds);
  w.key("sim_seconds").value(tally.sim_seconds);
  w.key("events_per_second").value(tally.events_per_second());
  w.key("sim_speedup").value(tally.sim_seconds_per_wall_second());
  w.end_object();
  w.end_object();

  std::ofstream out(opts.json_path);
  out << w.str() << '\n';
  if (!out) {
    std::cerr << "error: failed to write perf report to " << opts.json_path
              << '\n';
    return false;
  }
  return true;
}

/// End-of-bench boilerplate: print the tally, write the --json report.
inline void finish_bench(const std::string& bench_name, const Options& opts,
                         const std::vector<CellPerf>& cells = {},
                         std::ostream& os = std::cout) {
  print_throughput_tally(os);
  if (!opts.json_path.empty()) (void)write_json_report(bench_name, opts, cells);
}

/// Generate (and memoize) the synthetic workload for a (mix, overestimation)
/// pair: one workload is shared by every system/policy cell in a column.
/// std::map nodes are stable, so references returned by get() survive later
/// insertions — cells enqueued on a Runner may borrow them freely.
class WorkloadCache {
 public:
  explicit WorkloadCache(const Scale& scale) : scale_(scale) {}

  const workload::SyntheticWorkload& get(double pct_large,
                                         double overestimation) {
    const auto key = std::make_pair(pct_large, overestimation);
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      workload::SyntheticWorkloadConfig cfg;
      cfg.cirne.num_jobs = scale_.synth_jobs;
      cfg.cirne.system_nodes = scale_.synth_nodes;
      cfg.cirne.max_job_nodes = scale_.synth_max_job_nodes;
      cfg.cirne.target_load = 0.85;
      cfg.pct_large_jobs = pct_large;
      cfg.overestimation = overestimation;
      cfg.seed = scale_.seed;
      it = cache_.emplace(key, workload::generate_synthetic(cfg)).first;
    }
    return it->second;
  }

 private:
  Scale scale_;
  std::map<std::pair<double, double>, workload::SyntheticWorkload> cache_;
};

/// Deferred-execution cell runner for the bench binaries. Enqueue every
/// cell of the figure grid (add), execute the whole grid in one parallel
/// fan-out (run), then read results in submission order (get) while
/// formatting tables. finish() merges the sweep's throughput into the
/// process tally and emits the --json report.
class Runner {
 public:
  struct Handle {
    std::size_t index = static_cast<std::size_t>(-1);
    [[nodiscard]] bool valid() const noexcept {
      return index != static_cast<std::size_t>(-1);
    }
  };

  Runner(std::string bench_name, const Options& opts)
      : name_(std::move(bench_name)), opts_(opts), sweep_(opts.threads) {
    // Progress is stderr-only wall-clock telemetry; stdout (tables, JSON
    // reports) stays byte-deterministic.
    if (opts.progress) sweep_.set_progress(&std::cerr);
  }

  [[nodiscard]] Handle add(const harness::SystemConfig& system,
                           policy::PolicyKind kind,
                           const trace::Workload& jobs,
                           const slowdown::AppPool& apps, std::string label,
                           const sched::SchedulerConfig& sched = {}) {
    harness::CellConfig cell;
    cell.system = system;
    cell.policy = kind;
    cell.sched = sched;
    cell.label = label;
    labels_.push_back(std::move(label));
    return Handle{sweep_.add(std::move(cell), jobs, apps)};
  }

  /// Execute all cells enqueued so far (incremental across calls).
  void run() { sweep_.run_all(); }

  [[nodiscard]] const harness::CellResult& get(Handle handle) const {
    return sweep_.result(handle.index).cell;
  }

  /// Normalized throughput against `reference`, or 0 when invalid.
  [[nodiscard]] double normalized(Handle handle, double reference) const {
    const harness::CellResult& r = get(handle);
    if (!r.valid || reference <= 0.0) return 0.0;
    return r.throughput() / reference;
  }

  [[nodiscard]] const Options& options() const noexcept { return opts_; }

  void finish(std::ostream& os = std::cout) {
    throughput_tally().merge(sweep_.report());
    std::vector<CellPerf> cells;
    cells.reserve(sweep_.results().size());
    for (std::size_t i = 0; i < sweep_.results().size(); ++i) {
      const harness::SweepCellResult& r = sweep_.results()[i];
      CellPerf perf;
      perf.label = labels_[i];
      perf.valid = r.cell.valid;
      perf.engine_events = r.cell.engine_events;
      perf.wall_seconds = r.wall_seconds;
      perf.sim_seconds = r.cell.valid ? r.cell.summary.makespan() : 0.0;
      cells.push_back(std::move(perf));
    }
    finish_bench(name_, opts_, cells, os);
  }

 private:
  std::string name_;
  Options opts_;
  harness::SweepRunner sweep_;
  std::vector<std::string> labels_;
};

/// The memory ladder restricted to the points the paper's figures display
/// (>= ~37% of a fully-large system).
[[nodiscard]] inline std::vector<harness::SystemConfig> figure_ladder(
    int total_nodes) {
  std::vector<harness::SystemConfig> out;
  for (const auto& sys : harness::memory_ladder(total_nodes)) {
    if (sys.memory_fraction() >= 0.37) out.push_back(sys);
  }
  return out;
}

[[nodiscard]] inline std::string mem_label(const harness::SystemConfig& sys) {
  return std::to_string(
      static_cast<int>(sys.memory_fraction() * 100.0 + 0.5));
}

inline void print_scale_banner(const Options& opts, const char* what) {
  const Scale& scale = opts.scale;
  std::cout << "# dmsim reproduction: " << what << "\n"
            << "# scale: " << (scale.full ? "FULL (paper)" : "reduced")
            << " — synthetic " << scale.synth_nodes << " nodes / "
            << scale.synth_jobs << " jobs; grizzly " << scale.grizzly_nodes
            << " nodes (pass --full for paper scale)\n"
            << "# sweep threads: "
            << (opts.threads == 0 ? std::string("auto")
                                  : std::to_string(opts.threads))
            << " (--threads N; output is identical at any setting)\n\n";
}

}  // namespace dmsim::bench
