// Shared plumbing for the table/figure reproduction binaries.
//
// Every bench accepts `--full` to run at the paper's scale (1024-node
// synthetic system, 1490-node Grizzly system). The default is a reduced
// scale tuned for a single-core CI box; the result *shapes* (who wins, by
// what factor, where crossovers sit) are preserved, which is the
// reproduction target (see EXPERIMENTS.md).
#pragma once

#include <chrono>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "core/dmsim.hpp"
#include "util/table.hpp"

namespace dmsim::bench {

/// Process-wide simulator-throughput tally across every cell a bench runs.
/// run_policy() feeds it; print_throughput_tally() renders it at the end of
/// a bench so every figure reproduction also reports events/sec and
/// sim-time speedup for free.
inline obs::ThroughputReport& throughput_tally() {
  static obs::ThroughputReport tally;
  return tally;
}

inline void print_throughput_tally(std::ostream& os = std::cout) {
  const auto& tally = throughput_tally();
  if (tally.engine_events == 0) return;
  os << "\n# simulator throughput: ";
  obs::print_throughput(os, tally);
}

struct Scale {
  bool full = false;
  int synth_nodes = 384;
  std::size_t synth_jobs = 768;
  int synth_max_job_nodes = 48;
  int grizzly_nodes = 256;
  int grizzly_max_job_nodes = 48;
  int grizzly_weeks = 16;
  std::uint64_t seed = 42;
};

[[nodiscard]] inline Scale parse_scale(int argc, char** argv) {
  Scale s;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      s.full = true;
      s.synth_nodes = 1024;
      s.synth_jobs = 2048;
      s.synth_max_job_nodes = 128;
      s.grizzly_nodes = 1490;
      s.grizzly_max_job_nodes = 128;
      s.grizzly_weeks = 52;
    }
  }
  return s;
}

/// Generate (and memoize) the synthetic workload for a (mix, overestimation)
/// pair: one workload is shared by every system/policy cell in a column.
class WorkloadCache {
 public:
  explicit WorkloadCache(const Scale& scale) : scale_(scale) {}

  const workload::SyntheticWorkload& get(double pct_large,
                                         double overestimation) {
    const auto key = std::make_pair(pct_large, overestimation);
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      workload::SyntheticWorkloadConfig cfg;
      cfg.cirne.num_jobs = scale_.synth_jobs;
      cfg.cirne.system_nodes = scale_.synth_nodes;
      cfg.cirne.max_job_nodes = scale_.synth_max_job_nodes;
      cfg.cirne.target_load = 0.85;
      cfg.pct_large_jobs = pct_large;
      cfg.overestimation = overestimation;
      cfg.seed = scale_.seed;
      it = cache_.emplace(key, workload::generate_synthetic(cfg)).first;
    }
    return it->second;
  }

 private:
  Scale scale_;
  std::map<std::pair<double, double>, workload::SyntheticWorkload> cache_;
};

[[nodiscard]] inline harness::CellResult run_policy(
    const harness::SystemConfig& system, policy::PolicyKind kind,
    const trace::Workload& jobs, const slowdown::AppPool& apps) {
  harness::CellConfig cell;
  cell.system = system;
  cell.policy = kind;
  const auto wall_start = std::chrono::steady_clock::now();
  harness::CellResult result = harness::run_cell(cell, jobs, apps);
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;
  auto& tally = throughput_tally();
  tally.engine_events += result.engine_events;
  if (result.valid) tally.sim_seconds += result.summary.makespan();
  tally.wall_seconds += wall.count();
  return result;
}

/// The reference for normalized-throughput plots: Baseline on the fully
/// provisioned (100% large nodes) system against the same job mix at +0%
/// overestimation, as in Fig. 5.
[[nodiscard]] inline double baseline_reference(WorkloadCache& cache,
                                               double pct_large,
                                               int total_nodes) {
  const auto& w = cache.get(pct_large, 0.0);
  harness::SystemConfig sys;
  sys.total_nodes = total_nodes;
  sys.pct_large_nodes = 1.0;
  const auto r = run_policy(sys, policy::PolicyKind::Baseline, w.jobs, w.apps);
  return r.valid ? r.throughput() : 0.0;
}

/// The memory ladder restricted to the points the paper's figures display
/// (>= ~37% of a fully-large system).
[[nodiscard]] inline std::vector<harness::SystemConfig> figure_ladder(
    int total_nodes) {
  std::vector<harness::SystemConfig> out;
  for (const auto& sys : harness::memory_ladder(total_nodes)) {
    if (sys.memory_fraction() >= 0.37) out.push_back(sys);
  }
  return out;
}

[[nodiscard]] inline std::string mem_label(const harness::SystemConfig& sys) {
  return std::to_string(
      static_cast<int>(sys.memory_fraction() * 100.0 + 0.5));
}

inline void print_scale_banner(const Scale& scale, const char* what) {
  std::cout << "# dmsim reproduction: " << what << "\n"
            << "# scale: " << (scale.full ? "FULL (paper)" : "reduced")
            << " — synthetic " << scale.synth_nodes << " nodes / "
            << scale.synth_jobs << " jobs; grizzly " << scale.grizzly_nodes
            << " nodes (pass --full for paper scale)\n\n";
}

}  // namespace dmsim::bench
