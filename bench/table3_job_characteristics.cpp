// Table 3: normal- vs large-memory job characteristics (per-node memory and
// node-hours quartiles) of the synthetic trace, printed beside the paper's
// published quartiles.
#include <vector>

#include "bench_common.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace dmsim;
  const auto opts = bench::parse_options(argc, argv);
  const auto& scale = opts.scale;
  bench::print_scale_banner(opts, "Table 3 — job class characteristics");

  bench::WorkloadCache cache(scale);
  const auto& w = cache.get(0.5, 0.0);

  std::vector<double> normal_mem, large_mem, normal_nh, large_nh;
  for (const auto& j : w.jobs) {
    const bool large = workload::is_large_memory_job(j, gib(64));
    (large ? large_mem : normal_mem)
        .push_back(static_cast<double>(j.peak_usage()));
    (large ? large_nh : normal_nh).push_back(j.node_seconds());
  }

  const auto qn_mem = util::quartiles(normal_mem);
  const auto ql_mem = util::quartiles(large_mem);
  const auto qn_nh = util::quartiles(normal_nh);
  const auto ql_nh = util::quartiles(large_nh);

  util::TextTable table("Table 3 | memory (MiB/node) and node-seconds quartiles");
  table.set_header({"metric", "normal(meas)", "normal(paper)", "large(meas)",
                    "large(paper)"});
  const auto row = [&](const char* name, double nm, double np, double lm,
                       double lp) {
    table.add_row({name, util::fmt(nm, 0), util::fmt(np, 0), util::fmt(lm, 0),
                   util::fmt(lp, 0)});
  };
  row("mem q1", qn_mem.q1, 4037, ql_mem.q1, 76176);
  row("mem median", qn_mem.median, 8089, ql_mem.median, 86961);
  row("mem q3", qn_mem.q3, 15341, ql_mem.q3, 99956);
  row("mem max", qn_mem.max, 65532, ql_mem.max, 130046);
  row("node-sec q1", qn_nh.q1, 132, ql_nh.q1, 256);
  row("node-sec median", qn_nh.median, 2717, ql_nh.median, 6720);
  row("node-sec q3", qn_nh.q3, 29264, ql_nh.q3, 77028);
  table.print(std::cout);

  std::cout << "\nMemory quartiles are calibration targets (log-normal fits of"
               "\nthe paper's Table 3); node-hours come from the CIRNE model"
               "\nand are expected to match in order of magnitude only.\n";
  bench::finish_bench("table3_job_characteristics", opts);
  return 0;
}
