// Google-benchmark micro-benchmarks for the simulator substrate: event
// engine, memory ledger, RDP compression, contention model and end-to-end
// small simulations. These bound the cost of the primitives the figure
// reproductions lean on.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <sstream>
#include <utility>

#include "core/dmsim.hpp"
#include "snapshot/image.hpp"

namespace {

using namespace dmsim;

constexpr MiB kGiB = 1024;

void BM_EngineScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    std::uint64_t fired = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      engine.schedule(static_cast<Seconds>(i % 97), [&fired] { ++fired; });
    }
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1000)->Arg(10000);

void BM_EngineCancelHeavy(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    std::vector<sim::EventId> ids;
    ids.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      ids.push_back(engine.schedule(static_cast<Seconds>(i), [] {}));
    }
    for (std::uint64_t i = 0; i < n; i += 2) engine.cancel(ids[i]);
    engine.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EngineCancelHeavy)->Arg(10000);

// The cancel/reschedule pattern that dominates the scheduler's hot path:
// every fired event cancels a previously-armed timer and re-arms a new one
// (walltime kills, monitor updates, backfill reservations all do this).
// The slot-slab engine resolves each cancel with two array indexations and
// no hashing, and recycles slots through the free list, so the working set
// stays at `window` slots no matter how many events churn through.
void BM_EngineCancelReschedule(benchmark::State& state) {
  const auto window = static_cast<std::uint64_t>(state.range(0));
  constexpr std::uint64_t kChurn = 64 * 1024;
  for (auto _ : state) {
    sim::Engine engine;
    std::vector<sim::EventId> armed(window);
    for (std::uint64_t i = 0; i < window; ++i) {
      armed[i] = engine.schedule(static_cast<Seconds>(i % 97) + 1.0, [] {});
    }
    std::uint64_t fired = 0;
    for (std::uint64_t i = 0; i < kChurn; ++i) {
      engine.schedule(static_cast<Seconds>(i % 89) * 1e-3,
                      [&fired] { ++fired; });
      const std::uint64_t victim = i % window;
      engine.cancel(armed[victim]);
      armed[victim] =
          engine.schedule(static_cast<Seconds>(i % 97) + 2.0, [] {});
    }
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kChurn));
}
BENCHMARK(BM_EngineCancelReschedule)->Arg(1024)->Arg(8192);

// Steady-state churn: a bounded pending set where each fired event schedules
// its successor — the engine equivalent of a running simulation that neither
// grows nor drains its queue. Exercises slot reuse + heap push/pop per event.
void BM_EngineSteadyChurn(benchmark::State& state) {
  const auto pending = static_cast<std::uint64_t>(state.range(0));
  constexpr std::uint64_t kTotal = 256 * 1024;
  for (auto _ : state) {
    sim::Engine engine;
    std::uint64_t fired = 0;
    std::function<void()> chain = [&] {
      if (++fired + pending <= kTotal) {
        engine.schedule(engine.now() + 1.0 + (fired % 13), chain);
      }
    };
    for (std::uint64_t i = 0; i < pending; ++i) {
      engine.schedule(static_cast<Seconds>(i % 13), chain);
    }
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTotal));
}
BENCHMARK(BM_EngineSteadyChurn)->Arg(256)->Arg(4096);

void BM_LedgerGrowShrinkRemote(benchmark::State& state) {
  cluster::Cluster c(
      cluster::make_cluster_config(static_cast<int>(state.range(0)), 64 * kGiB,
                                   0, 0));
  const JobId job{1};
  c.assign_job(job, std::vector<NodeId>{NodeId{0}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.grow_remote(job, NodeId{0}, 32 * kGiB));
    benchmark::DoNotOptimize(c.shrink_remote(job, NodeId{0}, 32 * kGiB));
  }
}
BENCHMARK(BM_LedgerGrowShrinkRemote)->Arg(128)->Arg(1024);

void BM_RdpCompression(benchmark::State& state) {
  util::Rng rng(3);
  std::vector<trace::UsagePoint> pts;
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    pts.push_back({static_cast<double>(i) / n,
                   1000 + rng.uniform_int(0, 4000)});
  }
  const trace::UsageTrace t(std::move(pts));
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.compressed(100.0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_RdpCompression)->Arg(256)->Arg(2048);

void BM_ContentionEvaluate(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  cluster::Cluster c(
      cluster::make_cluster_config(jobs * 2, 64 * kGiB, 0, 0));
  const slowdown::AppPool pool =
      slowdown::AppPool::synthetic(util::Rng(1), 32);
  std::vector<slowdown::ContentionModel::JobInput> inputs;
  for (int i = 0; i < jobs; ++i) {
    const JobId job{static_cast<std::uint32_t>(i + 1)};
    c.assign_job(job, std::vector<NodeId>{NodeId{static_cast<std::uint32_t>(i)}});
    (void)c.grow_local(job, NodeId{static_cast<std::uint32_t>(i)}, 32 * kGiB);
    (void)c.grow_remote(job, NodeId{static_cast<std::uint32_t>(i)}, 16 * kGiB);
    inputs.push_back({job, i % 32});
  }
  const slowdown::ContentionModel model(&pool);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.evaluate(c, inputs));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * jobs);
}
BENCHMARK(BM_ContentionEvaluate)->Arg(64)->Arg(512);

void BM_UsageTraceMaxIn(benchmark::State& state) {
  util::Rng rng(7);
  std::vector<trace::UsagePoint> pts;
  for (int i = 0; i < 64; ++i) {
    pts.push_back({i / 64.0, rng.uniform_int(100, 100000)});
  }
  const trace::UsageTrace t(std::move(pts));
  double p = 0.0;
  for (auto _ : state) {
    p += 0.001;
    if (p > 0.9) p = 0.0;
    benchmark::DoNotOptimize(t.max_in(p, p + 0.1));
  }
}
BENCHMARK(BM_UsageTraceMaxIn);

void BM_EndToEndSmallSimulation(benchmark::State& state) {
  workload::SyntheticWorkloadConfig cfg;
  cfg.cirne.num_jobs = 128;
  cfg.cirne.system_nodes = 64;
  cfg.cirne.max_job_nodes = 16;
  cfg.pct_large_jobs = 0.5;
  cfg.overestimation = 0.6;
  cfg.seed = 4;
  const auto w = workload::generate_synthetic(cfg);
  harness::SystemConfig sys;
  sys.total_nodes = 64;
  sys.pct_large_nodes = 0.25;
  for (auto _ : state) {
    harness::CellConfig cell;
    cell.system = sys;
    cell.policy = policy::PolicyKind::Dynamic;
    benchmark::DoNotOptimize(harness::run_cell(cell, w.jobs, w.apps));
  }
}
BENCHMARK(BM_EndToEndSmallSimulation)->Unit(benchmark::kMillisecond);

// Tracing overhead on the same end-to-end simulation, across the three
// instrumentation states: 0 = disabled (null TraceSink*, one branch per
// site — must stay within noise of the uninstrumented simulator),
// 1 = NullSink (adds event construction + virtual dispatch),
// 2 = NdjsonSink to an in-memory stream (adds serialization).
void BM_TracingOverhead(benchmark::State& state) {
  workload::SyntheticWorkloadConfig cfg;
  cfg.cirne.num_jobs = 128;
  cfg.cirne.system_nodes = 64;
  cfg.cirne.max_job_nodes = 16;
  cfg.pct_large_jobs = 0.5;
  cfg.overestimation = 0.6;
  cfg.seed = 4;
  const auto w = workload::generate_synthetic(cfg);
  harness::CellConfig cell;
  cell.system.total_nodes = 64;
  cell.system.pct_large_nodes = 0.25;
  cell.policy = policy::PolicyKind::Dynamic;

  const int mode = static_cast<int>(state.range(0));
  obs::NullSink null_sink;
  std::ostringstream buf;
  obs::NdjsonSink ndjson_sink(buf);
  for (auto _ : state) {
    obs::TraceSink* sink = nullptr;
    if (mode == 1) sink = &null_sink;
    if (mode == 2) {
      buf.str({});
      sink = &ndjson_sink;
    }
    benchmark::DoNotOptimize(harness::run_cell(cell, w.jobs, w.apps, sink));
  }
  state.SetLabel(mode == 0 ? "disabled" : mode == 1 ? "null-sink" : "ndjson");
}
BENCHMARK(BM_TracingOverhead)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

// Raw cost of one Histogram::record — the per-site price of distribution
// telemetry on hot paths (a countl_zero, four compares, two adds).
void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram h;
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  for (auto _ : state) {
    // xorshift keeps values unpredictable so the bucket branch can't train.
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    h.record(static_cast<std::int64_t>(x >> 32));
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

// TimeSeries::record with monotone time: almost always folds into the
// current window (one compare), occasionally appends.
void BM_TimeSeriesRecord(benchmark::State& state) {
  obs::TimeSeries s(10.0);
  double t = 0.0;
  for (auto _ : state) {
    t += 0.01;
    s.record(t, 1);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimeSeriesRecord);

void BM_WorkloadGeneration(benchmark::State& state) {
  for (auto _ : state) {
    workload::SyntheticWorkloadConfig cfg;
    cfg.cirne.num_jobs = static_cast<std::size_t>(state.range(0));
    cfg.cirne.system_nodes = 256;
    cfg.cirne.max_job_nodes = 64;
    cfg.pct_large_jobs = 0.5;
    cfg.seed = 5;
    benchmark::DoNotOptimize(workload::generate_synthetic(cfg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_WorkloadGeneration)->Arg(512)->Unit(benchmark::kMillisecond);

// Checkpoint cost: serialize a mid-run simulation (engine + cluster +
// scheduler) to snapshot bytes and restore those bytes into a second,
// freshly-constructed simulation. Bounds the per-save overhead a
// --checkpoint-every run pays and the one-time cost of a resume.
void BM_CheckpointSaveRestore(benchmark::State& state) {
  workload::SyntheticWorkloadConfig cfg;
  cfg.cirne.num_jobs = 128;
  cfg.cirne.system_nodes = 64;
  cfg.cirne.max_job_nodes = 16;
  cfg.pct_large_jobs = 0.5;
  cfg.overestimation = 0.6;
  cfg.seed = 4;
  const auto w = workload::generate_synthetic(cfg);

  struct BenchSim {
    explicit BenchSim(const workload::SyntheticWorkload& w) {
      harness::SystemConfig sys;
      sys.total_nodes = 64;
      sys.pct_large_nodes = 0.25;
      cluster_ = std::make_unique<cluster::Cluster>(sys.to_cluster_config());
      policy_ = policy::make_policy(policy::PolicyKind::Dynamic);
      sched::SchedulerConfig cfg;
      cfg.sample_interval = 300.0;
      scheduler_ = std::make_unique<sched::Scheduler>(
          engine_, *cluster_, *policy_, &w.apps, cfg, nullptr);
      scheduler_->submit_workload(w.jobs);
    }
    [[nodiscard]] snapshot::Components components() noexcept {
      return {&engine_, cluster_.get(), scheduler_.get(), nullptr};
    }
    sim::Engine engine_;
    std::unique_ptr<cluster::Cluster> cluster_;
    std::unique_ptr<policy::AllocationPolicy> policy_;
    std::unique_ptr<sched::Scheduler> scheduler_;
  };

  // Advance the source simulation to a busy mid-point, and keep a fresh
  // restore target (components constructed, workload submitted, not run).
  BenchSim source(w);
  BenchSim target(w);
  (void)source.scheduler_->run_ready(20000.0);
  const snapshot::Components src = source.components();
  const snapshot::Components dst = target.components();

  std::uint64_t bytes_total = 0;
  for (auto _ : state) {
    const std::string bytes = snapshot::save_bytes(src);
    snapshot::restore_bytes(bytes, dst);
    bytes_total += bytes.size();
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes_total));
}
BENCHMARK(BM_CheckpointSaveRestore)->Unit(benchmark::kMicrosecond);

// The two restore paths of the two-level snapshot model, on the same
// mid-run state. BM_RestoreFromFile pays the serve-naive per-query cost:
// file read, checksum sweep, full config-fingerprint recompute, decode.
// BM_ForkFromImage is the serve fast path: the image was opened and
// validated once, each fork is a decode plus one 64-bit fingerprint
// compare. CI asserts the fork is at least 5x cheaper — the floor that
// keeps validation and byte copies out of the per-fork path.
struct RestoreBenchSim {
  explicit RestoreBenchSim(const workload::SyntheticWorkload& w) {
    harness::SystemConfig sys;
    sys.total_nodes = 64;
    sys.pct_large_nodes = 0.25;
    cluster_ = std::make_unique<cluster::Cluster>(sys.to_cluster_config());
    policy_ = policy::make_policy(policy::PolicyKind::Dynamic);
    sched::SchedulerConfig cfg;
    cfg.sample_interval = 300.0;
    scheduler_ = std::make_unique<sched::Scheduler>(
        engine_, *cluster_, *policy_, &w.apps, cfg, nullptr);
    scheduler_->submit_workload(w.jobs);
  }
  [[nodiscard]] snapshot::Components components() noexcept {
    return {&engine_, cluster_.get(), scheduler_.get(), nullptr};
  }
  sim::Engine engine_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<policy::AllocationPolicy> policy_;
  std::unique_ptr<sched::Scheduler> scheduler_;
};

[[nodiscard]] workload::SyntheticWorkload restore_bench_workload() {
  workload::SyntheticWorkloadConfig cfg;
  cfg.cirne.num_jobs = 128;
  cfg.cirne.system_nodes = 64;
  cfg.cirne.max_job_nodes = 16;
  cfg.pct_large_jobs = 0.5;
  cfg.overestimation = 0.6;
  cfg.seed = 4;
  return workload::generate_synthetic(cfg);
}

void BM_RestoreFromFile(benchmark::State& state) {
  const auto w = restore_bench_workload();
  RestoreBenchSim source(w);
  RestoreBenchSim target(w);
  (void)source.scheduler_->run_ready(20000.0);
  const std::string path = "micro_restore.snap";
  snapshot::save_file(path, source.components());
  const snapshot::Components dst = target.components();
  for (auto _ : state) {
    snapshot::restore_file(path, dst);
  }
  state.SetItemsProcessed(state.iterations());
  std::remove(path.c_str());
}
BENCHMARK(BM_RestoreFromFile)->Unit(benchmark::kMicrosecond);

void BM_ForkFromImage(benchmark::State& state) {
  const auto w = restore_bench_workload();
  RestoreBenchSim source(w);
  RestoreBenchSim target(w);
  (void)source.scheduler_->run_ready(20000.0);
  const std::string path = "micro_fork.snap";
  snapshot::save_file(path, source.components());
  const std::shared_ptr<const snapshot::Image> image = snapshot::Image::open(path);
  const std::uint64_t fp = image->fingerprint();
  const snapshot::Components dst = target.components();
  for (auto _ : state) {
    image->materialize_trusted(dst, fp);
  }
  state.SetItemsProcessed(state.iterations());
  std::remove(path.c_str());
}
BENCHMARK(BM_ForkFromImage)->Unit(benchmark::kMicrosecond);

// --- Scheduler hot-path benches at paper scale (1490 nodes) ----------------
//
// The paper's sc cluster is 1490 nodes (1024 normal + 466 large). These pin
// the cost of the three operations the incremental cluster indexes rewrote:
// Static host selection (BM_TryStart), bringing slowdowns current after one
// ledger perturbation (BM_RefreshSlowdowns), and remote growth through the
// ordered-lender index (BM_GrowRemote). The *Legacy variants reproduce the
// pre-index algorithms — full node scans plus sorts, and a full two-pass
// model evaluation — so the speedup is measurable from a single run.

constexpr int kScNormal = 1024;
constexpr int kScLarge = 466;

// A 1490-node cluster in steady state: three of every five nodes host a
// one-node job with varied local fill (spreading the free-memory levels the
// indexes have to order) and every third job borrows remote memory.
cluster::Cluster busy_sc_cluster(std::vector<std::uint32_t>* running_out) {
  cluster::Cluster c(cluster::make_cluster_config(kScNormal, 64 * kGiB,
                                                  kScLarge, 128 * kGiB));
  std::uint32_t id = 1;
  for (std::size_t i = 0; i < c.node_count(); ++i) {
    if (i % 5 >= 3) continue;  // leave 40% of nodes idle
    const JobId job{id++};
    const NodeId host{static_cast<std::uint32_t>(i)};
    c.assign_job(job, std::vector<NodeId>{host});
    (void)c.grow_local(job, host, (static_cast<MiB>(i % 48) + 4) * kGiB);
    if (i % 3 == 0) {
      (void)c.grow_remote(job, host, (static_cast<MiB>(i % 12) + 1) * kGiB);
    }
    if (running_out != nullptr) running_out->push_back(job.get());
  }
  return c;
}

trace::JobSpec sc_start_spec() {
  trace::JobSpec spec;
  spec.id = JobId{900000};
  spec.num_nodes = 8;
  spec.requested_mem = 80 * kGiB;  // only large nodes fit without borrowing
  return spec;
}

void BM_TryStart(benchmark::State& state) {
  cluster::Cluster c = busy_sc_cluster(nullptr);
  const auto policy = policy::make_policy(policy::PolicyKind::Static);
  const trace::JobSpec spec = sc_start_spec();
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->try_start(spec, c));
    c.finish_job(spec.id);
  }
}
BENCHMARK(BM_TryStart);

// The pre-index Static selection: scan all nodes for hostability, partition
// by sufficiency, sort both classes, then place. Kept verbatim from the old
// policy so BM_TryStart / BM_TryStartLegacy is the index speedup.
void BM_TryStartLegacy(benchmark::State& state) {
  cluster::Cluster c = busy_sc_cluster(nullptr);
  const trace::JobSpec spec = sc_start_spec();
  std::vector<NodeId> sufficient;
  std::vector<NodeId> insufficient;
  std::vector<NodeId> hosts;
  for (auto _ : state) {
    sufficient.clear();
    insufficient.clear();
    hosts.clear();
    for (const auto& n : c.nodes()) {
      if (!n.idle() || n.memory_node()) continue;
      (n.free() >= spec.requested_mem ? sufficient : insufficient)
          .push_back(n.id);
    }
    std::sort(sufficient.begin(), sufficient.end(), [&](NodeId a, NodeId b) {
      const MiB fa = c.node(a).free();
      const MiB fb = c.node(b).free();
      if (fa != fb) return fa < fb;  // tightest fit first
      return a < b;
    });
    std::sort(insufficient.begin(), insufficient.end(),
              [&](NodeId a, NodeId b) {
                const MiB fa = c.node(a).free();
                const MiB fb = c.node(b).free();
                if (fa != fb) return fa > fb;  // most free first
                return a < b;
              });
    for (NodeId n : sufficient) {
      if (std::cmp_equal(hosts.size(), spec.num_nodes)) break;
      hosts.push_back(n);
    }
    for (NodeId n : insufficient) {
      if (std::cmp_equal(hosts.size(), spec.num_nodes)) break;
      hosts.push_back(n);
    }
    c.assign_job(spec.id, hosts);
    for (NodeId h : hosts) {
      MiB need = spec.requested_mem;
      need -= c.grow_local(spec.id, h, need);
      if (need > 0) (void)c.grow_remote(spec.id, h, need);
    }
    c.finish_job(spec.id);
  }
}
BENCHMARK(BM_TryStartLegacy);

void BM_RefreshSlowdowns(benchmark::State& state) {
  std::vector<std::uint32_t> running;
  cluster::Cluster c = busy_sc_cluster(&running);
  const slowdown::AppPool pool = slowdown::AppPool::synthetic(util::Rng(1), 32);
  const slowdown::ContentionModel model(&pool);
  slowdown::IncrementalSlowdowns inc(&model);
  const auto app_of = [](JobId id) { return static_cast<int>(id.get() % 32); };
  std::vector<slowdown::IncrementalSlowdowns::Update> updates;
  inc.refresh(c, running, app_of, updates);  // prime the pressure buffer
  c.clear_contention_dirty();
  const JobId victim{running.front()};  // a borrower (node 0 -> i % 3 == 0)
  const NodeId host = c.hosts_of(victim)[0];
  for (auto _ : state) {
    // Steady state: one borrow edge moves, then slowdowns come current.
    (void)c.grow_remote(victim, host, kGiB);
    (void)c.shrink_remote(victim, host, kGiB);
    updates.clear();
    inc.refresh(c, running, app_of, updates);
    c.clear_contention_dirty();
    benchmark::DoNotOptimize(updates.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RefreshSlowdowns);

// The pre-index refresh: the same single-edge perturbation followed by a
// full two-pass evaluation of every running job.
void BM_RefreshSlowdownsLegacy(benchmark::State& state) {
  std::vector<std::uint32_t> running;
  cluster::Cluster c = busy_sc_cluster(&running);
  const slowdown::AppPool pool = slowdown::AppPool::synthetic(util::Rng(1), 32);
  const slowdown::ContentionModel model(&pool);
  std::vector<slowdown::ContentionModel::JobInput> inputs;
  for (const std::uint32_t id : running) {
    inputs.push_back({JobId{id}, static_cast<int>(id % 32)});
  }
  const JobId victim{running.front()};
  const NodeId host = c.hosts_of(victim)[0];
  for (auto _ : state) {
    (void)c.grow_remote(victim, host, kGiB);
    (void)c.shrink_remote(victim, host, kGiB);
    c.clear_contention_dirty();
    benchmark::DoNotOptimize(model.evaluate(c, inputs));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RefreshSlowdownsLegacy);

// Whole-ledger hostability scan on the busy 1490-node cluster — the
// structure-of-arrays form: three column reads per node, no Node
// materialization, branch-free accumulate.
void BM_LedgerScanSoA(benchmark::State& state) {
  cluster::Cluster c = busy_sc_cluster(nullptr);
  const MiB need = 40 * kGiB;
  for (auto _ : state) {
    const auto free = c.free_column();
    const auto mem = c.memory_node_column();
    const auto running = c.running_job_column();
    std::size_t hits = 0;
    for (std::size_t i = 0; i < free.size(); ++i) {
      hits += static_cast<std::size_t>(running[i] == NodeId::kInvalid &&
                                       mem[i] == 0 && free[i] >= need);
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.node_count()));
}
BENCHMARK(BM_LedgerScanSoA);

// The same scan through the per-node view — the pre-refactor caller
// pattern (materialize a Node per iteration), retained verbatim so
// BM_LedgerScanLegacy / BM_LedgerScanSoA is the columnar-ledger speedup.
void BM_LedgerScanLegacy(benchmark::State& state) {
  cluster::Cluster c = busy_sc_cluster(nullptr);
  const MiB need = 40 * kGiB;
  for (auto _ : state) {
    std::size_t hits = 0;
    for (const auto& n : c.nodes()) {
      if (n.idle() && !n.memory_node() && n.free() >= need) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.node_count()));
}
BENCHMARK(BM_LedgerScanLegacy);

// Full invariant audit of the busy cluster: with the columnar ledger this is
// a handful of linear passes plus per-index walks (plus, in debug builds,
// the node-view parity sweep — benches build Release, so that's off).
void BM_CheckInvariants(benchmark::State& state) {
  cluster::Cluster c = busy_sc_cluster(nullptr);
  for (auto _ : state) {
    c.check_invariants();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.node_count()));
}
BENCHMARK(BM_CheckInvariants);

// Remote growth on the busy 1490-node cluster: every grow walks the ordered
// lender view (an index traversal now, a full scan + sort before).
void BM_GrowRemote(benchmark::State& state) {
  cluster::Cluster c = busy_sc_cluster(nullptr);
  const JobId job{900001};
  const NodeId host{3};  // idle in the busy layout (3 % 5 == 3)
  c.assign_job(job, std::vector<NodeId>{host});
  (void)c.grow_local(job, host, 64 * kGiB);  // fill: growth must go remote
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.grow_remote(job, host, 64 * kGiB));
    benchmark::DoNotOptimize(c.shrink_remote(job, host, 64 * kGiB));
  }
}
BENCHMARK(BM_GrowRemote);

}  // namespace

BENCHMARK_MAIN();
