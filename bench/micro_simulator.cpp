// Google-benchmark micro-benchmarks for the simulator substrate: event
// engine, memory ledger, RDP compression, contention model and end-to-end
// small simulations. These bound the cost of the primitives the figure
// reproductions lean on.
#include <benchmark/benchmark.h>

#include <functional>
#include <sstream>

#include "core/dmsim.hpp"

namespace {

using namespace dmsim;

constexpr MiB kGiB = 1024;

void BM_EngineScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    std::uint64_t fired = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      engine.schedule(static_cast<Seconds>(i % 97), [&fired] { ++fired; });
    }
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1000)->Arg(10000);

void BM_EngineCancelHeavy(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    std::vector<sim::EventId> ids;
    ids.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      ids.push_back(engine.schedule(static_cast<Seconds>(i), [] {}));
    }
    for (std::uint64_t i = 0; i < n; i += 2) engine.cancel(ids[i]);
    engine.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EngineCancelHeavy)->Arg(10000);

// The cancel/reschedule pattern that dominates the scheduler's hot path:
// every fired event cancels a previously-armed timer and re-arms a new one
// (walltime kills, monitor updates, backfill reservations all do this).
// The slot-slab engine resolves each cancel with two array indexations and
// no hashing, and recycles slots through the free list, so the working set
// stays at `window` slots no matter how many events churn through.
void BM_EngineCancelReschedule(benchmark::State& state) {
  const auto window = static_cast<std::uint64_t>(state.range(0));
  constexpr std::uint64_t kChurn = 64 * 1024;
  for (auto _ : state) {
    sim::Engine engine;
    std::vector<sim::EventId> armed(window);
    for (std::uint64_t i = 0; i < window; ++i) {
      armed[i] = engine.schedule(static_cast<Seconds>(i % 97) + 1.0, [] {});
    }
    std::uint64_t fired = 0;
    for (std::uint64_t i = 0; i < kChurn; ++i) {
      engine.schedule(static_cast<Seconds>(i % 89) * 1e-3,
                      [&fired] { ++fired; });
      const std::uint64_t victim = i % window;
      engine.cancel(armed[victim]);
      armed[victim] =
          engine.schedule(static_cast<Seconds>(i % 97) + 2.0, [] {});
    }
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kChurn));
}
BENCHMARK(BM_EngineCancelReschedule)->Arg(1024)->Arg(8192);

// Steady-state churn: a bounded pending set where each fired event schedules
// its successor — the engine equivalent of a running simulation that neither
// grows nor drains its queue. Exercises slot reuse + heap push/pop per event.
void BM_EngineSteadyChurn(benchmark::State& state) {
  const auto pending = static_cast<std::uint64_t>(state.range(0));
  constexpr std::uint64_t kTotal = 256 * 1024;
  for (auto _ : state) {
    sim::Engine engine;
    std::uint64_t fired = 0;
    std::function<void()> chain = [&] {
      if (++fired + pending <= kTotal) {
        engine.schedule(engine.now() + 1.0 + (fired % 13), chain);
      }
    };
    for (std::uint64_t i = 0; i < pending; ++i) {
      engine.schedule(static_cast<Seconds>(i % 13), chain);
    }
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTotal));
}
BENCHMARK(BM_EngineSteadyChurn)->Arg(256)->Arg(4096);

void BM_LedgerGrowShrinkRemote(benchmark::State& state) {
  cluster::Cluster c(
      cluster::make_cluster_config(static_cast<int>(state.range(0)), 64 * kGiB,
                                   0, 0));
  const JobId job{1};
  c.assign_job(job, std::vector<NodeId>{NodeId{0}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.grow_remote(job, NodeId{0}, 32 * kGiB));
    benchmark::DoNotOptimize(c.shrink_remote(job, NodeId{0}, 32 * kGiB));
  }
}
BENCHMARK(BM_LedgerGrowShrinkRemote)->Arg(128)->Arg(1024);

void BM_RdpCompression(benchmark::State& state) {
  util::Rng rng(3);
  std::vector<trace::UsagePoint> pts;
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    pts.push_back({static_cast<double>(i) / n,
                   1000 + rng.uniform_int(0, 4000)});
  }
  const trace::UsageTrace t(std::move(pts));
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.compressed(100.0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_RdpCompression)->Arg(256)->Arg(2048);

void BM_ContentionEvaluate(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  cluster::Cluster c(
      cluster::make_cluster_config(jobs * 2, 64 * kGiB, 0, 0));
  const slowdown::AppPool pool =
      slowdown::AppPool::synthetic(util::Rng(1), 32);
  std::vector<slowdown::ContentionModel::JobInput> inputs;
  for (int i = 0; i < jobs; ++i) {
    const JobId job{static_cast<std::uint32_t>(i + 1)};
    c.assign_job(job, std::vector<NodeId>{NodeId{static_cast<std::uint32_t>(i)}});
    (void)c.grow_local(job, NodeId{static_cast<std::uint32_t>(i)}, 32 * kGiB);
    (void)c.grow_remote(job, NodeId{static_cast<std::uint32_t>(i)}, 16 * kGiB);
    inputs.push_back({job, i % 32});
  }
  const slowdown::ContentionModel model(&pool);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.evaluate(c, inputs));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * jobs);
}
BENCHMARK(BM_ContentionEvaluate)->Arg(64)->Arg(512);

void BM_UsageTraceMaxIn(benchmark::State& state) {
  util::Rng rng(7);
  std::vector<trace::UsagePoint> pts;
  for (int i = 0; i < 64; ++i) {
    pts.push_back({i / 64.0, rng.uniform_int(100, 100000)});
  }
  const trace::UsageTrace t(std::move(pts));
  double p = 0.0;
  for (auto _ : state) {
    p += 0.001;
    if (p > 0.9) p = 0.0;
    benchmark::DoNotOptimize(t.max_in(p, p + 0.1));
  }
}
BENCHMARK(BM_UsageTraceMaxIn);

void BM_EndToEndSmallSimulation(benchmark::State& state) {
  workload::SyntheticWorkloadConfig cfg;
  cfg.cirne.num_jobs = 128;
  cfg.cirne.system_nodes = 64;
  cfg.cirne.max_job_nodes = 16;
  cfg.pct_large_jobs = 0.5;
  cfg.overestimation = 0.6;
  cfg.seed = 4;
  const auto w = workload::generate_synthetic(cfg);
  harness::SystemConfig sys;
  sys.total_nodes = 64;
  sys.pct_large_nodes = 0.25;
  for (auto _ : state) {
    harness::CellConfig cell;
    cell.system = sys;
    cell.policy = policy::PolicyKind::Dynamic;
    benchmark::DoNotOptimize(harness::run_cell(cell, w.jobs, w.apps));
  }
}
BENCHMARK(BM_EndToEndSmallSimulation)->Unit(benchmark::kMillisecond);

// Tracing overhead on the same end-to-end simulation, across the three
// instrumentation states: 0 = disabled (null TraceSink*, one branch per
// site — must stay within noise of the uninstrumented simulator),
// 1 = NullSink (adds event construction + virtual dispatch),
// 2 = NdjsonSink to an in-memory stream (adds serialization).
void BM_TracingOverhead(benchmark::State& state) {
  workload::SyntheticWorkloadConfig cfg;
  cfg.cirne.num_jobs = 128;
  cfg.cirne.system_nodes = 64;
  cfg.cirne.max_job_nodes = 16;
  cfg.pct_large_jobs = 0.5;
  cfg.overestimation = 0.6;
  cfg.seed = 4;
  const auto w = workload::generate_synthetic(cfg);
  harness::CellConfig cell;
  cell.system.total_nodes = 64;
  cell.system.pct_large_nodes = 0.25;
  cell.policy = policy::PolicyKind::Dynamic;

  const int mode = static_cast<int>(state.range(0));
  obs::NullSink null_sink;
  std::ostringstream buf;
  obs::NdjsonSink ndjson_sink(buf);
  for (auto _ : state) {
    obs::TraceSink* sink = nullptr;
    if (mode == 1) sink = &null_sink;
    if (mode == 2) {
      buf.str({});
      sink = &ndjson_sink;
    }
    benchmark::DoNotOptimize(harness::run_cell(cell, w.jobs, w.apps, sink));
  }
  state.SetLabel(mode == 0 ? "disabled" : mode == 1 ? "null-sink" : "ndjson");
}
BENCHMARK(BM_TracingOverhead)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

void BM_WorkloadGeneration(benchmark::State& state) {
  for (auto _ : state) {
    workload::SyntheticWorkloadConfig cfg;
    cfg.cirne.num_jobs = static_cast<std::size_t>(state.range(0));
    cfg.cirne.system_nodes = 256;
    cfg.cirne.max_job_nodes = 64;
    cfg.pct_large_jobs = 0.5;
    cfg.seed = 5;
    benchmark::DoNotOptimize(workload::generate_synthetic(cfg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_WorkloadGeneration)->Arg(512)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
