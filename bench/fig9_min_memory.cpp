// Figure 9: the smallest memory provisioning that sustains >= 95% of the
// fully-provisioned baseline throughput, as a function of the
// overestimation factor, for Static vs Dynamic (synthetic trace, 50% large
// jobs). Built on the harness::min_memory_for_threshold library driver,
// which fans each threshold search out over --threads workers.
#include "bench_common.hpp"
#include "harness/experiments.hpp"

int main(int argc, char** argv) {
  using namespace dmsim;
  const auto opts = bench::parse_options(argc, argv);
  bench::print_scale_banner(opts,
                            "Figure 9 — min memory for 95% of throughput");
  bench::WorkloadCache cache(opts.scale);
  obs::ThroughputReport tally;

  const auto& exact = cache.get(0.5, 0.0);
  const double reference = harness::reference_throughput(
      exact.jobs, exact.apps, opts.scale.synth_nodes, &tally);
  const auto ladder = bench::figure_ladder(opts.scale.synth_nodes);

  util::TextTable table("Fig 9 | min total system memory reaching 95% throughput");
  table.set_header({"overestimation", "static mem%", "dynamic mem%",
                    "dynamic saving"});
  for (const double over : {0.0, 0.25, 0.50, 0.60, 0.75, 1.00}) {
    const auto& w = cache.get(0.5, over);
    const auto static_mem = harness::min_memory_for_threshold(
        w.jobs, w.apps, ladder, policy::PolicyKind::Static, reference, {},
        0.95, opts.threads, &tally);
    const auto dynamic_mem = harness::min_memory_for_threshold(
        w.jobs, w.apps, ladder, policy::PolicyKind::Dynamic, reference, {},
        0.95, opts.threads, &tally);
    table.add_row({
        "+" + util::fmt(over * 100, 0) + "%",
        static_mem ? util::fmt(*static_mem * 100, 0) : "none",
        dynamic_mem ? util::fmt(*dynamic_mem * 100, 0) : "none",
        (static_mem && dynamic_mem)
            ? util::fmt_pct(1.0 - *dynamic_mem / *static_mem, 1)
            : "-",
    });
  }
  table.print(std::cout);
  std::cout << "\npaper: the static policy needs ever more memory as "
               "overestimation grows; the dynamic policy holds the 95% "
               "threshold on underprovisioned systems, saving up to ~40% "
               "memory.\n";
  bench::throughput_tally().merge(tally);
  bench::finish_bench("fig9_min_memory", opts);
  return 0;
}
