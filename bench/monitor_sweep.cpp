// Monitor sweep: what does imperfect memory monitoring cost? The paper's
// dynamic policy assumes the scheduler sees each job's true usage trace
// (an oracle). Real monitors sample — with error, staleness, and per-region
// overhead (DAMON-style adaptive regions). This sweep crosses monitor
// fidelity with the update interval on one memory-constrained system and
// reports Fig. 5-style normalized throughput plus the runtime-OOM rate the
// estimation error induces.
//
// Monitor axis:
//   oracle         — ground truth; reproduces the untiered benches bit for
//                    bit (the subsystem's identity contract)
//   sampled-lo/hi  — fixed-period sampling with 5%/20% relative error (the
//                    hi variant also observes a 30 s-stale window)
//   adaptive-*     — DAMON-style split/merge regions; `fine` pays more
//                    per-update overhead for a tighter error bound
//
// --json FILE writes BENCH_monitor.json: one record per (monitor, update
// interval) cell. stdout is byte-identical at any --threads setting.
#include <array>

#include "bench_common.hpp"

namespace {

using namespace dmsim;

struct MonitorVariant {
  const char* name;
  monitor::MonitorConfig config;
};

[[nodiscard]] std::vector<MonitorVariant> monitor_variants() {
  using monitor::MonitorConfig;
  using monitor::MonitorKind;
  std::vector<MonitorVariant> variants;
  variants.push_back({"oracle", MonitorConfig{}});

  MonitorConfig lo;
  lo.kind = MonitorKind::Sampled;
  lo.relative_error = 0.05;
  lo.staleness = 0.0;
  variants.push_back({"sampled-lo", lo});

  MonitorConfig hi;
  hi.kind = MonitorKind::Sampled;
  hi.relative_error = 0.20;
  hi.staleness = 30.0;
  variants.push_back({"sampled-hi", hi});

  MonitorConfig coarse;
  coarse.kind = MonitorKind::Adaptive;
  coarse.min_interval = 60.0;
  coarse.max_interval = 600.0;
  coarse.error_bound = 0.10;
  variants.push_back({"adaptive", coarse});

  MonitorConfig fine;
  fine.kind = MonitorKind::Adaptive;
  fine.min_interval = 30.0;
  fine.max_interval = 300.0;
  fine.error_bound = 0.05;
  fine.overhead_us_per_region = 50.0;
  variants.push_back({"adaptive-fine", fine});

  return variants;
}

constexpr std::array kIntervals = {120.0, 300.0, 600.0};

}  // namespace

int main(int argc, char** argv) {
  const auto opts = dmsim::bench::parse_options(argc, argv);
  dmsim::bench::print_scale_banner(
      opts, "monitor sweep — throughput/OOM per monitor fidelity");

  // The Runner must not claim the --json path: BENCH_monitor.json carries
  // the per-cell curves below, not the generic perf report.
  dmsim::bench::Options runner_opts = opts;
  runner_opts.json_path.clear();
  dmsim::bench::Runner runner("monitor_sweep", runner_opts);
  dmsim::bench::WorkloadCache cache(opts.scale);

  const auto variants = monitor_variants();
  const auto& w = cache.get(0.25, 0.4);

  // One memory-constrained system (the steepest part of the Fig. 5 curve,
  // ~50% of fully-large memory) where provisioning accuracy actually binds;
  // a fully-large Static system provides the normalization reference.
  const auto ladder = dmsim::bench::figure_ladder(opts.scale.synth_nodes);
  harness::SystemConfig constrained = ladder[ladder.size() / 2];
  harness::SystemConfig full;
  full.total_nodes = opts.scale.synth_nodes;
  full.pct_large_nodes = 1.0;

  // Phase 1: enqueue the (monitor, interval) grid under the dynamic policy.
  const auto reference =
      runner.add(full, policy::PolicyKind::Static, w.jobs, w.apps, "ref");
  std::vector<std::vector<dmsim::bench::Runner::Handle>> rows;
  for (const MonitorVariant& variant : variants) {
    std::vector<dmsim::bench::Runner::Handle> row;
    for (const double interval : kIntervals) {
      sched::SchedulerConfig sched;
      sched.update_interval = interval;
      sched.monitor = variant.config;
      row.push_back(runner.add(constrained, policy::PolicyKind::Dynamic,
                               w.jobs, w.apps,
                               std::string(variant.name) + " T=" +
                                   std::to_string(static_cast<int>(interval)),
                               sched));
    }
    rows.push_back(std::move(row));
  }

  // Phase 2: one parallel fan-out.
  runner.run();

  // Phase 3: one table, monitors as rows, intervals as column groups.
  const auto& ref_cell = runner.get(reference);
  const double ref = ref_cell.valid ? ref_cell.throughput() : 0.0;
  util::TextTable table("Monitor sweep | dynamic policy, mem=" +
                        dmsim::bench::mem_label(constrained) + "%");
  std::vector<std::string> header = {"monitor"};
  for (const double interval : kIntervals) {
    const std::string t = std::to_string(static_cast<int>(interval));
    header.push_back("thr@" + t + "s");
    header.push_back("oom@" + t + "s");
  }
  table.set_header(std::move(header));
  for (std::size_t v = 0; v < variants.size(); ++v) {
    std::vector<std::string> row = {variants[v].name};
    for (std::size_t s = 0; s < kIntervals.size(); ++s) {
      const auto& r = runner.get(rows[v][s]);
      if (!r.valid) {
        row.push_back("-");
        row.push_back("-");
        continue;
      }
      row.push_back(util::fmt(ref > 0 ? r.throughput() / ref : 0.0, 3));
      row.push_back(util::fmt_pct(r.summary.oom_job_fraction(), 2));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << '\n';
  runner.finish();

  // BENCH_monitor.json: the full grid, machine-readable.
  if (!opts.json_path.empty()) {
    metrics::JsonWriter jw;
    jw.begin_object();
    jw.key("bench").value("monitor_sweep");
    jw.key("scale").value(opts.scale.full ? "full" : "reduced");
    jw.key("mem_pct").value(dmsim::bench::mem_label(constrained));
    jw.key("reference_throughput").value(ref);
    jw.key("cells").begin_array();
    for (std::size_t v = 0; v < variants.size(); ++v) {
      for (std::size_t s = 0; s < kIntervals.size(); ++s) {
        const auto& r = runner.get(rows[v][s]);
        jw.begin_object();
        jw.key("monitor").value(variants[v].name);
        jw.key("kind").value(
            std::string(monitor::to_string(variants[v].config.kind)));
        jw.key("update_interval_s").value(kIntervals[s]);
        jw.key("valid").value(r.valid);
        jw.key("throughput").value(r.valid ? r.throughput() : 0.0);
        jw.key("normalized_throughput")
            .value(r.valid && ref > 0 ? r.throughput() / ref : 0.0);
        jw.key("mean_response_s")
            .value(r.valid ? r.summary.response_time.mean() : 0.0);
        jw.key("oom_job_fraction")
            .value(r.valid ? r.summary.oom_job_fraction() : 0.0);
        jw.end_object();
      }
    }
    jw.end_array();
    jw.end_object();
    std::ofstream out(opts.json_path);
    out << jw.str() << '\n';
    if (!out) {
      std::cerr << "error: failed to write " << opts.json_path << '\n';
      return 1;
    }
  }
  return 0;
}
