// Exascale trajectory bench: simulate one exa-Grizzly week at each requested
// node count and record the scaling evidence in BENCH_scale.json.
//
// The paper tops out at Grizzly scale (1490 nodes); the roadmap's north star
// is 100k-1M. Each --scale point gets:
//
//   * a simulated week on the scaled system (workload::exa_grizzly): the
//     Grizzly node mix and arrival process replicated to the target count,
//     run under the Dynamic policy through harness::SweepRunner;
//   * whole-ledger probe timings on a deterministically-busy cluster of that
//     size — the structure-of-arrays column scan vs the retained per-node
//     view scan (ns/node each), and one incremental slowdown refresh vs a
//     full two-pass contention evaluation;
//   * wall time, events/s and process peak RSS for the week.
//
// stdout is the deterministic half (topology, workload and simulation
// metrics — byte-identical at any --threads); wall-clock quantities go only
// to the --json report. --enforce-floors turns the report into a gate: the
// SoA scan must beat the per-node scan >= 3x at every scale, and the
// incremental refresh must beat the full evaluation >= 5x at >= 100k nodes.
//
//   scale_sweep [--scale grizzly|10k|100k|1m|N]... [--threads N]
//               [--json FILE] [--enforce-floors] [--progress]
//
// Default scales: grizzly + 10k (the CI smoke configuration).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "bench_common.hpp"
#include "core/dmsim.hpp"
#include "harness/sweep.hpp"
#include "workload/exa_grizzly.hpp"

namespace {

using namespace dmsim;

constexpr MiB kGiB = 1024;
constexpr double kScanFloor = 3.0;      // SoA scan vs per-node view scan
constexpr double kRefreshFloor = 5.0;   // incremental vs full refresh
constexpr int kRefreshFloorNodes = 100'000;  // refresh floor applies from here

/// Process peak RSS in MiB (0 where getrusage is unavailable). ru_maxrss is
/// KiB on Linux, bytes on macOS.
[[nodiscard]] long peak_rss_mib() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return usage.ru_maxrss / (1024 * 1024);
#else
  return usage.ru_maxrss / 1024;
#endif
#else
  return 0;
#endif
}

struct ScalePoint {
  std::string name;  ///< as given on the command line
  int nodes = 0;
};

struct Options {
  std::vector<ScalePoint> scales;
  std::size_t threads = 0;
  std::string json_path;
  bool enforce_floors = false;
  bool progress = false;
};

[[nodiscard]] int parse_scale_name(const std::string& name) {
  if (name == "grizzly") return 1490;
  if (name == "10k") return 10'000;
  if (name == "100k") return 100'000;
  if (name == "1m" || name == "1M") return 1'000'000;
  try {
    const int n = std::stoi(name);
    if (n > 0) return n;
  } catch (const std::exception&) {
  }
  return 0;
}

[[nodiscard]] Options parse_options(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      const std::string name = argv[++i];
      const int nodes = parse_scale_name(name);
      if (nodes <= 0) {
        std::cerr << "error: bad --scale '" << name
                  << "' (use grizzly|10k|100k|1m or a positive integer)\n";
        std::exit(2);
      }
      opts.scales.push_back({name, nodes});
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      opts.threads = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      opts.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--enforce-floors") == 0) {
      opts.enforce_floors = true;
    } else if (std::strcmp(argv[i], "--progress") == 0) {
      opts.progress = true;
    }
  }
  if (opts.scales.empty()) {
    opts.scales = {{"grizzly", 1490}, {"10k", 10'000}};
  }
  return opts;
}

/// Probe timings for one scale point. All wall-clock; JSON-only.
struct ProbeReport {
  double soa_scan_ns_per_node = 0.0;
  double legacy_scan_ns_per_node = 0.0;
  double scan_speedup = 0.0;
  double refresh_incremental_us = 0.0;
  double refresh_full_us = 0.0;
  double refresh_speedup = 0.0;
};

/// A deterministically-busy cluster at the scaled topology: three of every
/// five nodes host a one-node job with varied local fill and every third
/// job borrows remote memory (the busy_sc_cluster layout from the micro
/// benches, generalized to any node count).
cluster::Cluster busy_cluster(const cluster::ClusterConfig& topology,
                              std::vector<std::uint32_t>* running_out) {
  cluster::Cluster c(topology);
  std::uint32_t id = 1;
  for (std::size_t i = 0; i < c.node_count(); ++i) {
    if (i % 5 >= 3) continue;  // leave 40% of nodes idle
    const JobId job{id++};
    const NodeId host{static_cast<std::uint32_t>(i)};
    c.assign_job(job, std::vector<NodeId>{host});
    (void)c.grow_local(job, host, (static_cast<MiB>(i % 48) + 4) * kGiB);
    if (i % 3 == 0) {
      (void)c.grow_remote(job, host, (static_cast<MiB>(i % 12) + 1) * kGiB);
    }
    if (running_out != nullptr) running_out->push_back(job.get());
  }
  return c;
}

/// Run `op` until it has consumed >= min_seconds of wall clock (at least
/// once) and return the mean seconds per call.
template <typename Op>
[[nodiscard]] double time_loop(double min_seconds, Op&& op) {
  using clock = std::chrono::steady_clock;
  const auto start = clock::now();
  std::size_t iters = 0;
  double elapsed = 0.0;
  do {
    op();
    ++iters;
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
  } while (elapsed < min_seconds);
  return elapsed / static_cast<double>(iters);
}

/// The hostability question every placement asks, over the whole ledger.
/// SoA form: three column scans, no Node materialization.
[[nodiscard]] std::size_t scan_soa(const cluster::Cluster& c, MiB need) {
  const std::span<const MiB> free = c.free_column();
  const std::span<const std::uint8_t> mem = c.memory_node_column();
  const std::span<const std::uint32_t> running = c.running_job_column();
  std::size_t hits = 0;
  for (std::size_t i = 0; i < free.size(); ++i) {
    hits += static_cast<std::size_t>(running[i] == NodeId::kInvalid &&
                                     mem[i] == 0 && free[i] >= need);
  }
  return hits;
}

/// The same question through the per-node view — the pre-refactor caller
/// pattern, retained verbatim so the column payoff stays measurable.
[[nodiscard]] std::size_t scan_legacy(const cluster::Cluster& c, MiB need) {
  std::size_t hits = 0;
  for (const auto& n : c.nodes()) {
    if (n.idle() && !n.memory_node() && n.free() >= need) ++hits;
  }
  return hits;
}

[[nodiscard]] ProbeReport run_probes(const cluster::ClusterConfig& topology) {
  ProbeReport out;
  std::vector<std::uint32_t> running;
  cluster::Cluster c = busy_cluster(topology, &running);
  const double n = static_cast<double>(c.node_count());
  const MiB need = 40 * kGiB;

  // Both scans must agree before their timings mean anything.
  std::size_t soa_hits = 0;
  std::size_t legacy_hits = 0;
  const double soa_s =
      time_loop(0.05, [&] { soa_hits = scan_soa(c, need); });
  const double legacy_s =
      time_loop(0.05, [&] { legacy_hits = scan_legacy(c, need); });
  DMSIM_ASSERT(soa_hits == legacy_hits,
               "scale_sweep: SoA and per-node scans disagree");
  out.soa_scan_ns_per_node = soa_s * 1e9 / n;
  out.legacy_scan_ns_per_node = legacy_s * 1e9 / n;
  out.scan_speedup = soa_s > 0.0 ? legacy_s / soa_s : 0.0;

  // Slowdown refresh after one borrow-edge perturbation: the dirty-set
  // incremental path vs a full two-pass evaluation of every running job.
  const slowdown::AppPool pool = slowdown::AppPool::synthetic(util::Rng(1), 32);
  const slowdown::ContentionModel model(&pool);
  slowdown::IncrementalSlowdowns inc(&model);
  const auto app_of = [](JobId id) { return static_cast<int>(id.get() % 32); };
  std::vector<slowdown::IncrementalSlowdowns::Update> updates;
  inc.refresh(c, running, app_of, updates);  // prime the pressure buffer
  c.clear_contention_dirty();
  const JobId victim{running.front()};  // node 0 hosts a borrower (0 % 3 == 0)
  const NodeId host = c.hosts_of(victim)[0];

  const double inc_s = time_loop(0.05, [&] {
    (void)c.grow_remote(victim, host, kGiB);
    (void)c.shrink_remote(victim, host, kGiB);
    updates.clear();
    inc.refresh(c, running, app_of, updates);
    c.clear_contention_dirty();
  });
  std::vector<slowdown::ContentionModel::JobInput> inputs;
  inputs.reserve(running.size());
  for (const std::uint32_t id : running) {
    inputs.push_back({JobId{id}, static_cast<int>(id % 32)});
  }
  const double full_s = time_loop(0.05, [&] {
    (void)c.grow_remote(victim, host, kGiB);
    (void)c.shrink_remote(victim, host, kGiB);
    c.clear_contention_dirty();
    volatile std::size_t sink = model.evaluate(c, inputs).size();
    (void)sink;
  });
  out.refresh_incremental_us = inc_s * 1e6;
  out.refresh_full_us = full_s * 1e6;
  out.refresh_speedup = inc_s > 0.0 ? full_s / inc_s : 0.0;
  return out;
}

/// Everything recorded for one scale point.
struct ScaleReport {
  ScalePoint point;
  workload::ExaGrizzlyScale scale;  ///< topology + week (kept for the sweep)
  harness::CellResult cell;
  double wall_seconds = 0.0;
  long rss_mib = 0;  ///< process peak after this scale (cumulative max)
  ProbeReport probes;
};

void print_scale_block(std::ostream& os, const ScaleReport& r) {
  const workload::ExaGrizzlyScale& s = r.scale;
  const metrics::WorkloadSummary& sum = r.cell.summary;
  os << "## scale " << r.point.name << ": " << r.point.nodes << " nodes ("
     << s.normal_nodes << " normal x 64 GiB + " << s.large_nodes
     << " large x 128 GiB), " << s.replicas << " grizzly-week replica"
     << (s.replicas == 1 ? "" : "s") << "\n";
  os << std::fixed;
  os << "jobs: " << sum.total_jobs << " submitted, " << sum.completed
     << " completed, " << sum.infeasible << " infeasible, " << sum.abandoned
     << " abandoned\n";
  os << std::setprecision(1) << "makespan: " << sum.makespan()
     << " s   mean response: " << sum.response_time.mean()
     << " s   mean wait: " << sum.wait_time.mean() << " s\n";
  os << std::setprecision(4) << "throughput: " << sum.throughput
     << " jobs/s   oom events: " << sum.oom_events << "\n";
  os << std::setprecision(1) << "avg allocated: " << r.cell.avg_allocated_mib
     << " MiB   avg busy nodes: " << r.cell.avg_busy_nodes << "\n\n";
  os.unsetf(std::ios_base::floatfield);
  os << std::setprecision(6);
}

void write_report(const Options& opts, const std::vector<ScaleReport>& reports,
                  bool floors_pass) {
  metrics::JsonWriter w;
  w.begin_object();
  w.key("bench").value("scale_sweep");
  w.key("threads").value(static_cast<std::uint64_t>(opts.threads));
  w.key("scales").begin_array();
  for (const ScaleReport& r : reports) {
    w.begin_object();
    w.key("name").value(r.point.name);
    w.key("nodes").value(static_cast<std::uint64_t>(r.point.nodes));
    w.key("normal_nodes").value(static_cast<std::uint64_t>(r.scale.normal_nodes));
    w.key("large_nodes").value(static_cast<std::uint64_t>(r.scale.large_nodes));
    w.key("replicas").value(static_cast<std::uint64_t>(r.scale.replicas));
    w.key("week_jobs").value(static_cast<std::uint64_t>(r.scale.week_jobs.size()));
    w.key("completed").value(static_cast<std::uint64_t>(r.cell.summary.completed));
    w.key("sim_seconds").value(r.cell.summary.makespan());
    w.key("engine_events").value(r.cell.engine_events);
    w.key("wall_seconds").value(r.wall_seconds);
    w.key("events_per_second")
        .value(r.wall_seconds > 0.0
                   ? static_cast<double>(r.cell.engine_events) / r.wall_seconds
                   : 0.0);
    w.key("peak_rss_mib").value(static_cast<std::uint64_t>(
        r.rss_mib > 0 ? static_cast<std::uint64_t>(r.rss_mib) : 0));
    w.key("probes").begin_object();
    w.key("soa_scan_ns_per_node").value(r.probes.soa_scan_ns_per_node);
    w.key("legacy_scan_ns_per_node").value(r.probes.legacy_scan_ns_per_node);
    w.key("scan_speedup").value(r.probes.scan_speedup);
    w.key("refresh_incremental_us").value(r.probes.refresh_incremental_us);
    w.key("refresh_full_us").value(r.probes.refresh_full_us);
    w.key("refresh_speedup").value(r.probes.refresh_speedup);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("floors").begin_object();
  w.key("scan_speedup_min").value(kScanFloor);
  w.key("refresh_speedup_min").value(kRefreshFloor);
  w.key("refresh_floor_nodes").value(
      static_cast<std::uint64_t>(kRefreshFloorNodes));
  w.key("enforced").value(opts.enforce_floors);
  w.key("pass").value(floors_pass);
  w.end_object();
  w.end_object();

  std::ofstream out(opts.json_path);
  out << w.str() << '\n';
  if (!out) {
    std::cerr << "error: failed to write " << opts.json_path << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = parse_options(argc, argv);

  std::cout << "# dmsim exascale trajectory: one exa-Grizzly week per scale\n"
            << "# sweep threads: "
            << (opts.threads == 0 ? std::string("auto")
                                  : std::to_string(opts.threads))
            << " (--threads N; output is identical at any setting)\n\n";

  // Generate every scale's system + week up front so the sweep can fan the
  // cells out together (the workloads are borrowed by the runner).
  std::vector<ScaleReport> reports;
  reports.reserve(opts.scales.size());
  for (const ScalePoint& point : opts.scales) {
    ScaleReport r;
    r.point = point;
    r.scale = workload::exa_grizzly(point.nodes);
    reports.push_back(std::move(r));
  }

  harness::SweepRunner sweep(opts.threads);
  if (opts.progress) sweep.set_progress(&std::cerr);
  std::vector<std::size_t> handles;
  for (ScaleReport& r : reports) {
    harness::CellConfig cell;
    cell.system.total_nodes = r.point.nodes;
    cell.system.pct_large_nodes = static_cast<double>(r.scale.large_nodes) /
                                  static_cast<double>(r.point.nodes);
    cell.system.normal_capacity = 64 * kGiB;
    cell.system.large_capacity = 128 * kGiB;
    cell.system.cores_per_node = 36;  // Grizzly: 2x18-core Xeon E5-2695v4
    cell.policy = policy::PolicyKind::Dynamic;
    cell.label = "exa-" + r.point.name + "/dynamic";
    handles.push_back(sweep.add(std::move(cell), r.scale.week_jobs,
                                r.scale.apps));
  }
  sweep.run_all();
  bench::throughput_tally().merge(sweep.report());

  bool floors_pass = true;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    ScaleReport& r = reports[i];
    const harness::SweepCellResult& cell = sweep.result(handles[i]);
    r.cell = cell.cell;
    r.wall_seconds = cell.wall_seconds;
    print_scale_block(std::cout, r);

    // Ledger probes run serially after the sweep so they time an otherwise
    // quiet process.
    r.probes = run_probes(r.scale.topology);
    r.rss_mib = peak_rss_mib();
    std::cerr << "# " << r.point.name << " probes: soa "
              << r.probes.soa_scan_ns_per_node << " ns/node, legacy "
              << r.probes.legacy_scan_ns_per_node << " ns/node ("
              << r.probes.scan_speedup << "x); refresh "
              << r.probes.refresh_incremental_us << " us vs full "
              << r.probes.refresh_full_us << " us ("
              << r.probes.refresh_speedup << "x)\n";

    if (r.probes.scan_speedup < kScanFloor) floors_pass = false;
    if (r.point.nodes >= kRefreshFloorNodes &&
        r.probes.refresh_speedup < kRefreshFloor) {
      floors_pass = false;
    }
  }

  bench::print_throughput_tally(std::cout);
  if (!opts.json_path.empty()) write_report(opts, reports, floors_pass);

  if (opts.enforce_floors && !floors_pass) {
    std::cerr << "error: perf floors not met (scan >= " << kScanFloor
              << "x everywhere; refresh >= " << kRefreshFloor << "x at >= "
              << kRefreshFloorNodes << " nodes)\n";
    return 1;
  }
  return 0;
}
