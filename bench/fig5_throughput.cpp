// Figure 5: normalized throughput (jobs/s) vs. total system memory, for
// large-job mixes {0,15,25,50,75,100}% plus the Grizzly trace, at +0% and
// +60% overestimation, under Baseline / Static / Dynamic.
//
// Throughput is normalized by the Baseline policy on the 100%-memory system
// (per job mix, +0% overestimation). "-" marks a missing bar: the system
// cannot run the mix at all under that policy.
//
// Two-phase structure: the whole figure grid — every (mix, overestimation,
// system, policy) cell plus the per-mix normalization references — is
// enqueued first, executed in one parallel fan-out, then formatted. The
// printed tables are byte-identical at any --threads setting.
#include <array>
#include <map>

#include "bench_common.hpp"

namespace {

using namespace dmsim;

constexpr std::array kPolicies = {policy::PolicyKind::Baseline,
                                  policy::PolicyKind::Static,
                                  policy::PolicyKind::Dynamic};
constexpr double kMixes[] = {0.0, 0.15, 0.25, 0.50, 0.75, 1.00};

struct SynthPanel {
  double overestimation = 0.0;
  double mix = 0.0;
  bench::Runner::Handle reference;
  std::vector<std::array<bench::Runner::Handle, 3>> rows;  // per ladder step
};

struct GrizzlyPanel {
  double overestimation = 0.0;
  int week = 0;
  workload::GrizzlyTrace trace;
  trace::Workload jobs;
  trace::Workload exact_jobs;  // +0% requests, for the reference cell
  bench::Runner::Handle reference;
  std::vector<std::array<bench::Runner::Handle, 3>> rows;
};

SynthPanel enqueue_synthetic(bench::Runner& runner, bench::WorkloadCache& cache,
                             const bench::Scale& scale, double mix,
                             double overestimation,
                             std::map<double, bench::Runner::Handle>& refs) {
  SynthPanel panel;
  panel.overestimation = overestimation;
  panel.mix = mix;
  // Reference: Baseline, 100% large nodes, +0% requests — shared by the
  // +0% and +60% panels of the same mix.
  if (const auto it = refs.find(mix); it != refs.end()) {
    panel.reference = it->second;
  } else {
    const auto& exact = cache.get(mix, 0.0);
    harness::SystemConfig full;
    full.total_nodes = scale.synth_nodes;
    full.pct_large_nodes = 1.0;
    panel.reference =
        runner.add(full, policy::PolicyKind::Baseline, exact.jobs, exact.apps,
                   "ref mix=" + util::fmt_pct(mix, 0));
    refs.emplace(mix, panel.reference);
  }
  const auto& w = cache.get(mix, overestimation);
  for (const auto& sys : bench::figure_ladder(scale.synth_nodes)) {
    std::array<bench::Runner::Handle, 3> row;
    for (std::size_t k = 0; k < kPolicies.size(); ++k) {
      row[k] = runner.add(sys, kPolicies[k], w.jobs, w.apps,
                          "synth mix=" + util::fmt_pct(mix, 0) + " over=" +
                              util::fmt_pct(overestimation, 0) + " mem=" +
                              bench::mem_label(sys) + " p=" +
                              std::to_string(k));
    }
    panel.rows.push_back(row);
  }
  return panel;
}

void print_synthetic(const bench::Runner& runner, const bench::Scale& scale,
                     const SynthPanel& panel) {
  const auto& ref_cell = runner.get(panel.reference);
  const double ref = ref_cell.valid ? ref_cell.throughput() : 0.0;
  util::TextTable table("Fig 5 | jobs large " + util::fmt_pct(panel.mix, 0) +
                        " | overestimation +" +
                        util::fmt(panel.overestimation * 100, 0) + "%");
  table.set_header({"mem%", "baseline", "static", "dynamic", "oom_jobs%"});
  const auto ladder = bench::figure_ladder(scale.synth_nodes);
  for (std::size_t s = 0; s < ladder.size(); ++s) {
    std::vector<std::string> row = {bench::mem_label(ladder[s])};
    double oom_fraction = 0.0;
    for (std::size_t k = 0; k < kPolicies.size(); ++k) {
      const auto& r = runner.get(panel.rows[s][k]);
      if (!r.valid) {
        row.push_back("-");
      } else {
        row.push_back(util::fmt(ref > 0 ? r.throughput() / ref : 0.0, 3));
        if (kPolicies[k] == policy::PolicyKind::Dynamic) {
          oom_fraction = r.summary.oom_job_fraction();
        }
      }
    }
    row.push_back(util::fmt_pct(oom_fraction, 2));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << '\n';
}

GrizzlyPanel enqueue_grizzly(bench::Runner& runner, const bench::Scale& scale,
                             double overestimation) {
  GrizzlyPanel panel;
  panel.overestimation = overestimation;
  workload::GrizzlyConfig gcfg;
  gcfg.weeks = scale.grizzly_weeks;
  gcfg.system_nodes = scale.grizzly_nodes;
  gcfg.max_job_nodes = scale.grizzly_max_job_nodes;
  gcfg.sample_weeks = 1;
  gcfg.overestimation = overestimation;
  gcfg.seed = scale.seed;
  panel.trace = workload::generate_grizzly(gcfg);
  for (const auto& wk : panel.trace.weeks) {
    if (wk.selected) {
      panel.week = wk.index;
      break;
    }
  }
  panel.jobs = materialize_grizzly_week(gcfg, panel.trace, panel.week);

  // Reference: baseline on 100% large nodes with exact (+0%) requests.
  workload::GrizzlyConfig exact = gcfg;
  exact.overestimation = 0.0;
  panel.exact_jobs = materialize_grizzly_week(exact, panel.trace, panel.week);
  harness::SystemConfig full;
  full.total_nodes = scale.grizzly_nodes;
  full.pct_large_nodes = 1.0;
  panel.reference = runner.add(full, policy::PolicyKind::Baseline,
                               panel.exact_jobs, panel.trace.apps,
                               "grizzly ref over=" +
                                   util::fmt_pct(overestimation, 0));
  for (const auto& sys : bench::figure_ladder(scale.grizzly_nodes)) {
    std::array<bench::Runner::Handle, 3> row;
    for (std::size_t k = 0; k < kPolicies.size(); ++k) {
      row[k] = runner.add(sys, kPolicies[k], panel.jobs, panel.trace.apps,
                          "grizzly over=" + util::fmt_pct(overestimation, 0) +
                              " mem=" + bench::mem_label(sys) + " p=" +
                              std::to_string(k));
    }
    panel.rows.push_back(row);
  }
  return panel;
}

void print_grizzly(const bench::Runner& runner, const bench::Scale& scale,
                   const GrizzlyPanel& panel) {
  const auto& ref_cell = runner.get(panel.reference);
  const double ref = ref_cell.valid ? ref_cell.throughput() : 0.0;
  util::TextTable table("Fig 5 | Grizzly trace (week " +
                        std::to_string(panel.week) + ", " +
                        std::to_string(panel.jobs.size()) +
                        " jobs) | overestimation +" +
                        util::fmt(panel.overestimation * 100, 0) + "%");
  table.set_header({"mem%", "baseline", "static", "dynamic"});
  const auto ladder = bench::figure_ladder(scale.grizzly_nodes);
  for (std::size_t s = 0; s < ladder.size(); ++s) {
    std::vector<std::string> row = {bench::mem_label(ladder[s])};
    for (std::size_t k = 0; k < kPolicies.size(); ++k) {
      const auto& r = runner.get(panel.rows[s][k]);
      row.push_back(r.valid
                        ? util::fmt(ref > 0 ? r.throughput() / ref : 0.0, 3)
                        : "-");
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = dmsim::bench::parse_options(argc, argv);
  dmsim::bench::print_scale_banner(
      opts, "Figure 5 — throughput vs provisioned memory");
  dmsim::bench::WorkloadCache cache(opts.scale);
  dmsim::bench::Runner runner("fig5_throughput", opts);

  // Phase 1: enqueue the whole grid.
  std::map<double, dmsim::bench::Runner::Handle> refs;
  std::vector<SynthPanel> synth_panels;
  std::vector<GrizzlyPanel> grizzly_panels;
  for (const double overestimation : {0.0, 0.6}) {
    for (const double mix : kMixes) {
      synth_panels.push_back(enqueue_synthetic(runner, cache, opts.scale, mix,
                                               overestimation, refs));
    }
    grizzly_panels.push_back(enqueue_grizzly(runner, opts.scale, overestimation));
  }

  // Phase 2: one parallel fan-out over every cell.
  runner.run();

  // Phase 3: format, in the figure's panel order.
  for (std::size_t block = 0; block < grizzly_panels.size(); ++block) {
    for (std::size_t m = 0; m < std::size(kMixes); ++m) {
      print_synthetic(runner, opts.scale,
                      synth_panels[block * std::size(kMixes) + m]);
    }
    print_grizzly(runner, opts.scale, grizzly_panels[block]);
  }
  runner.finish();
  return 0;
}
