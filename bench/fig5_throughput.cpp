// Figure 5: normalized throughput (jobs/s) vs. total system memory, for
// large-job mixes {0,15,25,50,75,100}% plus the Grizzly trace, at +0% and
// +60% overestimation, under Baseline / Static / Dynamic.
//
// Throughput is normalized by the Baseline policy on the 100%-memory system
// (per job mix, +0% overestimation). "-" marks a missing bar: the system
// cannot run the mix at all under that policy.
#include "bench_common.hpp"

namespace {

using namespace dmsim;

void synthetic_panel(bench::WorkloadCache& cache, const bench::Scale& scale,
                     double overestimation) {
  const double mixes[] = {0.0, 0.15, 0.25, 0.50, 0.75, 1.00};
  const auto ladder = bench::figure_ladder(scale.synth_nodes);

  for (const double mix : mixes) {
    const auto& w = cache.get(mix, overestimation);
    const double ref = bench::baseline_reference(cache, mix, scale.synth_nodes);
    util::TextTable table("Fig 5 | jobs large " + util::fmt_pct(mix, 0) +
                          " | overestimation +" +
                          util::fmt(overestimation * 100, 0) + "%");
    table.set_header({"mem%", "baseline", "static", "dynamic", "oom_jobs%"});
    for (const auto& sys : ladder) {
      std::vector<std::string> row = {bench::mem_label(sys)};
      double oom_fraction = 0.0;
      for (const auto kind : {policy::PolicyKind::Baseline,
                              policy::PolicyKind::Static,
                              policy::PolicyKind::Dynamic}) {
        const auto r = bench::run_policy(sys, kind, w.jobs, w.apps);
        if (!r.valid) {
          row.push_back("-");
        } else {
          row.push_back(util::fmt(ref > 0 ? r.throughput() / ref : 0.0, 3));
          if (kind == policy::PolicyKind::Dynamic) {
            oom_fraction = r.summary.oom_job_fraction();
          }
        }
      }
      row.push_back(util::fmt_pct(oom_fraction, 2));
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << '\n';
  }
}

void grizzly_panel(const bench::Scale& scale, double overestimation) {
  workload::GrizzlyConfig gcfg;
  gcfg.weeks = scale.grizzly_weeks;
  gcfg.system_nodes = scale.grizzly_nodes;
  gcfg.max_job_nodes = scale.grizzly_max_job_nodes;
  gcfg.sample_weeks = 1;
  gcfg.overestimation = overestimation;
  gcfg.seed = scale.seed;
  const workload::GrizzlyTrace trace = workload::generate_grizzly(gcfg);
  int week = 0;
  for (const auto& wk : trace.weeks) {
    if (wk.selected) {
      week = wk.index;
      break;
    }
  }
  const trace::Workload jobs = materialize_grizzly_week(gcfg, trace, week);

  // Reference: baseline on 100% large nodes with exact (+0%) requests.
  workload::GrizzlyConfig exact = gcfg;
  exact.overestimation = 0.0;
  const trace::Workload exact_jobs = materialize_grizzly_week(exact, trace, week);
  harness::SystemConfig full;
  full.total_nodes = scale.grizzly_nodes;
  full.pct_large_nodes = 1.0;
  const auto ref_run =
      bench::run_policy(full, policy::PolicyKind::Baseline, exact_jobs, trace.apps);
  const double ref = ref_run.valid ? ref_run.throughput() : 0.0;

  util::TextTable table("Fig 5 | Grizzly trace (week " + std::to_string(week) +
                        ", " + std::to_string(jobs.size()) +
                        " jobs) | overestimation +" +
                        util::fmt(overestimation * 100, 0) + "%");
  table.set_header({"mem%", "baseline", "static", "dynamic"});
  for (const auto& sys : bench::figure_ladder(scale.grizzly_nodes)) {
    std::vector<std::string> row = {bench::mem_label(sys)};
    for (const auto kind : {policy::PolicyKind::Baseline,
                            policy::PolicyKind::Static,
                            policy::PolicyKind::Dynamic}) {
      const auto r = bench::run_policy(sys, kind, jobs, trace.apps);
      row.push_back(r.valid
                        ? util::fmt(ref > 0 ? r.throughput() / ref : 0.0, 3)
                        : "-");
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = dmsim::bench::parse_scale(argc, argv);
  dmsim::bench::print_scale_banner(scale, "Figure 5 — throughput vs provisioned memory");
  dmsim::bench::WorkloadCache cache(scale);
  for (const double overestimation : {0.0, 0.6}) {
    synthetic_panel(cache, scale, overestimation);
    grizzly_panel(scale, overestimation);
  }
  dmsim::bench::print_throughput_tally();
  return 0;
}
