// Figure 7: cost-benefit analysis — throughput per dollar (y) versus the
// large-job mix (x), for system memory provisionings of 100/75/50/25%, at
// +0% and +60% overestimation, Static vs Dynamic. Costs follow Table 4
// ($10,154 per node excluding memory, $1,280 per 128 GB).
#include "bench_common.hpp"

namespace {

using namespace dmsim;

// Memory provisioning levels as (node family, % large nodes): 100% = all
// 128 GiB, 75% = half 64/half 128, 50% = all 64 GiB, 25% = all 32 GiB.
struct Provisioning {
  const char* name;
  MiB normal;
  MiB large;
  double pct_large;
};

constexpr Provisioning kSystems[] = {
    {"Sys 100%", gib(64), gib(128), 1.0},
    {"Sys 75%", gib(64), gib(128), 0.5},
    {"Sys 50%", gib(32), gib(64), 1.0},
    {"Sys 25%", gib(32), gib(64), 0.0},
};

constexpr double kMixes[] = {0.0, 0.25, 0.5, 0.75, 1.0};

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  bench::print_scale_banner(opts, "Figure 7 — throughput per dollar");
  bench::WorkloadCache cache(opts.scale);
  bench::Runner runner("fig7_cost_benefit", opts);

  // Enqueue the full (overestimation, system, mix) grid, Static + Dynamic.
  struct Cell {
    bench::Runner::Handle stat;
    bench::Runner::Handle dyn;
  };
  std::vector<Cell> cells;
  for (const double overestimation : {0.0, 0.6}) {
    for (const auto& prov : kSystems) {
      harness::SystemConfig sys;
      sys.total_nodes = opts.scale.synth_nodes;
      sys.normal_capacity = prov.normal;
      sys.large_capacity = prov.large;
      sys.pct_large_nodes = prov.pct_large;
      for (const double mix : kMixes) {
        const auto& w = cache.get(mix, overestimation);
        const std::string suffix = std::string(prov.name) + " mix=" +
                                   util::fmt_pct(mix, 0) + " over=" +
                                   util::fmt_pct(overestimation, 0);
        Cell cell;
        cell.stat = runner.add(sys, policy::PolicyKind::Static, w.jobs, w.apps,
                               "static " + suffix);
        cell.dyn = runner.add(sys, policy::PolicyKind::Dynamic, w.jobs, w.apps,
                              "dynamic " + suffix);
        cells.push_back(cell);
      }
    }
  }
  runner.run();

  std::size_t next = 0;
  for (const double overestimation : {0.0, 0.6}) {
    for (const auto& prov : kSystems) {
      harness::SystemConfig sys;
      sys.total_nodes = opts.scale.synth_nodes;
      sys.normal_capacity = prov.normal;
      sys.large_capacity = prov.large;
      sys.pct_large_nodes = prov.pct_large;

      util::TextTable table(
          std::string("Fig 7 | ") + prov.name + " (" +
          bench::mem_label(sys) + "% memory) | overestimation +" +
          util::fmt(overestimation * 100, 0) + "%");
      table.set_header({"jobs large%", "static thr/$", "dynamic thr/$",
                        "dynamic gain"});
      for (const double mix : kMixes) {
        const Cell& cell = cells[next++];
        const auto& stat = runner.get(cell.stat);
        const auto& dyn = runner.get(cell.dyn);
        std::vector<std::string> row = {util::fmt(mix * 100, 0)};
        if (!stat.valid || !dyn.valid) {
          row.insert(row.end(), {"-", "-", "-"});
        } else {
          row.push_back(util::fmt_sci(stat.throughput_per_dollar(), 3));
          row.push_back(util::fmt_sci(dyn.throughput_per_dollar(), 3));
          row.push_back(util::fmt_pct(
              stat.throughput_per_dollar() > 0
                  ? dyn.throughput_per_dollar() / stat.throughput_per_dollar() -
                        1.0
                  : 0.0,
              1));
        }
        table.add_row(std::move(row));
      }
      table.print(std::cout);
      std::cout << '\n';
    }
  }
  std::cout << "paper: dynamic improves throughput/$ by up to 8% at +0% and "
               "up to 38% at +60% overestimation,\nwith the static policy "
               "falling off steeply on lean systems as the large-job share "
               "grows.\n";
  runner.finish();
  return 0;
}
