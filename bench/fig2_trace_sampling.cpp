// Figure 2: sampling the Grizzly trace. Every one-week period is
// characterized by CPU utilization, maximum single-job node-hours and
// maximum per-node job memory (both normalized); weeks with >= 70%
// utilization are eligible and a random subset is selected for simulation.
#include <algorithm>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dmsim;
  const auto opts = bench::parse_options(argc, argv);
  const auto& scale = opts.scale;
  bench::print_scale_banner(opts, "Figure 2 — Grizzly week sampling");

  workload::GrizzlyConfig cfg;
  cfg.weeks = scale.grizzly_weeks;
  cfg.system_nodes = scale.grizzly_nodes;
  cfg.max_job_nodes = scale.grizzly_max_job_nodes;
  cfg.sample_weeks = 7;
  cfg.seed = scale.seed;
  const workload::GrizzlyTrace trace = workload::generate_grizzly(cfg);

  double max_nh = 0.0;
  MiB max_mem = 0;
  for (const auto& w : trace.weeks) {
    max_nh = std::max(max_nh, w.max_job_node_hours);
    max_mem = std::max(max_mem, w.max_job_memory);
  }

  util::TextTable table("Fig 2 | one-week periods (normalized metrics)");
  table.set_header({"week", "cpu_util%", "norm_max_node_hours",
                    "norm_max_memory", "jobs", "simulated"});
  int eligible = 0;
  int selected = 0;
  for (const auto& w : trace.weeks) {
    if (w.cpu_utilization >= cfg.utilization_floor) ++eligible;
    if (w.selected) ++selected;
    table.add_row({
        std::to_string(w.index),
        util::fmt(w.cpu_utilization * 100.0, 1),
        util::fmt(w.max_job_node_hours / max_nh, 3),
        util::fmt(static_cast<double>(w.max_job_memory) /
                      static_cast<double>(max_mem),
                  3),
        std::to_string(w.job_count),
        w.selected ? "yes (triangle)" : "no (dot)",
    });
  }
  table.print(std::cout);
  std::cout << "\nweeks >= " << util::fmt_pct(cfg.utilization_floor, 0)
            << " utilization: " << eligible << "; randomly selected for "
            << "simulation: " << selected
            << " (paper: 7 representative high-utilization weeks)\n";
  bench::finish_bench("fig2_trace_sampling", opts);
  return 0;
}
