// Figure 8: effect of memory overestimation on throughput. Panels sweep the
// overestimation factor {0,25,50,60,75,100}% for the synthetic trace at 50%
// large jobs (top row) and the Grizzly-style trace (bottom row), across the
// memory-provisioning ladder, for all three policies.
#include "bench_common.hpp"

namespace {

using namespace dmsim;

constexpr double kOverestimations[] = {0.0, 0.25, 0.50, 0.60, 0.75, 1.00};

void synthetic_row(bench::WorkloadCache& cache, const bench::Scale& scale) {
  const double ref = bench::baseline_reference(cache, 0.5, scale.synth_nodes);
  const auto ladder = bench::figure_ladder(scale.synth_nodes);
  for (const double over : kOverestimations) {
    const auto& w = cache.get(0.5, over);
    util::TextTable table("Fig 8 | synthetic, 50% large jobs | +" +
                          util::fmt(over * 100, 0) + "% overestimation");
    table.set_header({"mem%", "baseline", "static", "dynamic"});
    for (const auto& sys : ladder) {
      std::vector<std::string> row = {bench::mem_label(sys)};
      for (const auto kind : {policy::PolicyKind::Baseline,
                              policy::PolicyKind::Static,
                              policy::PolicyKind::Dynamic}) {
        const auto r = bench::run_policy(sys, kind, w.jobs, w.apps);
        row.push_back(
            r.valid ? util::fmt(ref > 0 ? r.throughput() / ref : 0.0, 3) : "-");
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << '\n';
  }
}

void grizzly_row(const bench::Scale& scale) {
  workload::GrizzlyConfig gcfg;
  gcfg.weeks = scale.grizzly_weeks;
  gcfg.system_nodes = scale.grizzly_nodes;
  gcfg.max_job_nodes = scale.grizzly_max_job_nodes;
  gcfg.sample_weeks = 1;
  gcfg.seed = scale.seed;
  const workload::GrizzlyTrace trace = workload::generate_grizzly(gcfg);
  int week = 0;
  for (const auto& wk : trace.weeks) {
    if (wk.selected) {
      week = wk.index;
      break;
    }
  }

  // Reference throughput: baseline, full provisioning, exact requests.
  const trace::Workload exact_jobs = materialize_grizzly_week(gcfg, trace, week);
  harness::SystemConfig full;
  full.total_nodes = scale.grizzly_nodes;
  full.pct_large_nodes = 1.0;
  const auto ref_run = bench::run_policy(full, policy::PolicyKind::Baseline,
                                         exact_jobs, trace.apps);
  const double ref = ref_run.valid ? ref_run.throughput() : 0.0;

  const auto ladder = bench::figure_ladder(scale.grizzly_nodes);
  for (const double over : kOverestimations) {
    workload::GrizzlyConfig cfg = gcfg;
    cfg.overestimation = over;
    const trace::Workload jobs = materialize_grizzly_week(cfg, trace, week);
    util::TextTable table("Fig 8 | Grizzly-style trace | +" +
                          util::fmt(over * 100, 0) + "% overestimation");
    table.set_header({"mem%", "baseline", "static", "dynamic"});
    for (const auto& sys : ladder) {
      std::vector<std::string> row = {bench::mem_label(sys)};
      for (const auto kind : {policy::PolicyKind::Baseline,
                              policy::PolicyKind::Static,
                              policy::PolicyKind::Dynamic}) {
        const auto r = bench::run_policy(sys, kind, jobs, trace.apps);
        row.push_back(
            r.valid ? util::fmt(ref > 0 ? r.throughput() / ref : 0.0, 3) : "-");
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = bench::parse_scale(argc, argv);
  bench::print_scale_banner(scale, "Figure 8 — throughput vs overestimation");
  bench::WorkloadCache cache(scale);
  synthetic_row(cache, scale);
  grizzly_row(scale);
  std::cout << "paper: the dynamic approach is barely affected by "
               "overestimation; at +100% the static-dynamic gap exceeds 38% "
               "on a 37%-memory system while dynamic stays above ~80%.\n";
  dmsim::bench::print_throughput_tally();
  return 0;
}
