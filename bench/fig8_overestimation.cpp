// Figure 8: effect of memory overestimation on throughput. Panels sweep the
// overestimation factor {0,25,50,60,75,100}% for the synthetic trace at 50%
// large jobs (top row) and the Grizzly-style trace (bottom row), across the
// memory-provisioning ladder, for all three policies.
#include <array>

#include "bench_common.hpp"

namespace {

using namespace dmsim;

constexpr double kOverestimations[] = {0.0, 0.25, 0.50, 0.60, 0.75, 1.00};
constexpr std::array kPolicies = {policy::PolicyKind::Baseline,
                                  policy::PolicyKind::Static,
                                  policy::PolicyKind::Dynamic};

using LadderRows = std::vector<std::array<bench::Runner::Handle, 3>>;

LadderRows enqueue_ladder(bench::Runner& runner,
                          const std::vector<harness::SystemConfig>& ladder,
                          const trace::Workload& jobs,
                          const slowdown::AppPool& apps,
                          const std::string& tag) {
  LadderRows rows;
  for (const auto& sys : ladder) {
    std::array<bench::Runner::Handle, 3> row;
    for (std::size_t k = 0; k < kPolicies.size(); ++k) {
      row[k] = runner.add(sys, kPolicies[k], jobs, apps,
                          tag + " mem=" + bench::mem_label(sys) + " p=" +
                              std::to_string(k));
    }
    rows.push_back(row);
  }
  return rows;
}

void print_ladder(const bench::Runner& runner,
                  const std::vector<harness::SystemConfig>& ladder,
                  const LadderRows& rows, const std::string& title,
                  double ref) {
  util::TextTable table(title);
  table.set_header({"mem%", "baseline", "static", "dynamic"});
  for (std::size_t s = 0; s < ladder.size(); ++s) {
    std::vector<std::string> row = {bench::mem_label(ladder[s])};
    for (std::size_t k = 0; k < kPolicies.size(); ++k) {
      const auto& r = runner.get(rows[s][k]);
      row.push_back(
          r.valid ? util::fmt(ref > 0 ? r.throughput() / ref : 0.0, 3) : "-");
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  bench::print_scale_banner(opts, "Figure 8 — throughput vs overestimation");
  bench::WorkloadCache cache(opts.scale);
  bench::Runner runner("fig8_overestimation", opts);
  const auto& scale = opts.scale;

  // --- Enqueue: synthetic row (50% large jobs). -------------------------
  // Reference: baseline, full provisioning, exact requests.
  harness::SystemConfig synth_full;
  synth_full.total_nodes = scale.synth_nodes;
  synth_full.pct_large_nodes = 1.0;
  const auto& exact = cache.get(0.5, 0.0);
  const auto synth_ref = runner.add(synth_full, policy::PolicyKind::Baseline,
                                    exact.jobs, exact.apps, "synth ref");
  const auto synth_ladder = bench::figure_ladder(scale.synth_nodes);
  std::vector<LadderRows> synth_rows;
  for (const double over : kOverestimations) {
    const auto& w = cache.get(0.5, over);
    synth_rows.push_back(enqueue_ladder(runner, synth_ladder, w.jobs, w.apps,
                                        "synth over=" + util::fmt_pct(over, 0)));
  }

  // --- Enqueue: Grizzly row. --------------------------------------------
  workload::GrizzlyConfig gcfg;
  gcfg.weeks = scale.grizzly_weeks;
  gcfg.system_nodes = scale.grizzly_nodes;
  gcfg.max_job_nodes = scale.grizzly_max_job_nodes;
  gcfg.sample_weeks = 1;
  gcfg.seed = scale.seed;
  const workload::GrizzlyTrace trace = workload::generate_grizzly(gcfg);
  int week = 0;
  for (const auto& wk : trace.weeks) {
    if (wk.selected) {
      week = wk.index;
      break;
    }
  }

  // Materialized workloads must outlive runner.run(): keep every
  // per-overestimation job list alive in this vector.
  const trace::Workload grizzly_exact =
      materialize_grizzly_week(gcfg, trace, week);
  std::vector<trace::Workload> grizzly_jobs;
  grizzly_jobs.reserve(std::size(kOverestimations));
  for (const double over : kOverestimations) {
    workload::GrizzlyConfig cfg = gcfg;
    cfg.overestimation = over;
    grizzly_jobs.push_back(materialize_grizzly_week(cfg, trace, week));
  }

  harness::SystemConfig grizzly_full;
  grizzly_full.total_nodes = scale.grizzly_nodes;
  grizzly_full.pct_large_nodes = 1.0;
  const auto grizzly_ref =
      runner.add(grizzly_full, policy::PolicyKind::Baseline, grizzly_exact,
                 trace.apps, "grizzly ref");
  const auto grizzly_ladder = bench::figure_ladder(scale.grizzly_nodes);
  std::vector<LadderRows> grizzly_rows;
  for (std::size_t i = 0; i < std::size(kOverestimations); ++i) {
    grizzly_rows.push_back(
        enqueue_ladder(runner, grizzly_ladder, grizzly_jobs[i], trace.apps,
                       "grizzly over=" +
                           util::fmt_pct(kOverestimations[i], 0)));
  }

  // --- Run everything in one fan-out, then format. ----------------------
  runner.run();

  {
    const auto& r = runner.get(synth_ref);
    const double ref = r.valid ? r.throughput() : 0.0;
    for (std::size_t i = 0; i < std::size(kOverestimations); ++i) {
      print_ladder(runner, synth_ladder, synth_rows[i],
                   "Fig 8 | synthetic, 50% large jobs | +" +
                       util::fmt(kOverestimations[i] * 100, 0) +
                       "% overestimation",
                   ref);
    }
  }
  {
    const auto& r = runner.get(grizzly_ref);
    const double ref = r.valid ? r.throughput() : 0.0;
    for (std::size_t i = 0; i < std::size(kOverestimations); ++i) {
      print_ladder(runner, grizzly_ladder, grizzly_rows[i],
                   "Fig 8 | Grizzly-style trace | +" +
                       util::fmt(kOverestimations[i] * 100, 0) +
                       "% overestimation",
                   ref);
    }
  }
  std::cout << "paper: the dynamic approach is barely affected by "
               "overestimation; at +100% the static-dynamic gap exceeds 38% "
               "on a 37%-memory system while dynamic stays above ~80%.\n";
  runner.finish();
  return 0;
}
