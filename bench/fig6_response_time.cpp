// Figure 6: empirical cumulative distribution of job response time
// (waiting + running) for over-provisioned, matching and under-provisioned
// systems, at +0% and +60% overestimation, Static vs Dynamic.
//
// "Provisioning" compares the large-node supply against the large-job
// demand: a 50%-large job mix on a 75%-large system is over-provisioned, on
// a 50%-large system matching, and on a 25%-large system under-provisioned.
#include "bench_common.hpp"
#include "util/stats.hpp"

namespace {

using namespace dmsim;

struct Panel {
  const char* name;
  double overestimation;
  bench::Runner::Handle stat;
  bench::Runner::Handle dyn;
};

Panel enqueue_panel(bench::Runner& runner, bench::WorkloadCache& cache,
                    const bench::Scale& scale, const char* name,
                    double pct_large_nodes, double overestimation) {
  const auto& w = cache.get(0.5, overestimation);
  harness::SystemConfig sys;
  sys.total_nodes = scale.synth_nodes;
  sys.pct_large_nodes = pct_large_nodes;
  const std::string suffix = std::string(name) + " over=" +
                             util::fmt_pct(overestimation, 0);
  Panel panel{name, overestimation, {}, {}};
  panel.stat = runner.add(sys, policy::PolicyKind::Static, w.jobs, w.apps,
                          "static " + suffix);
  panel.dyn = runner.add(sys, policy::PolicyKind::Dynamic, w.jobs, w.apps,
                         "dynamic " + suffix);
  return panel;
}

void print_panel(const bench::Runner& runner, const Panel& panel) {
  const auto& stat = runner.get(panel.stat);
  const auto& dyn = runner.get(panel.dyn);
  if (!stat.valid || !dyn.valid) {
    std::cout << "== Fig 6 | " << panel.name << " | +"
              << util::fmt(panel.overestimation * 100, 0)
              << "% == : configuration cannot run the mix\n\n";
    return;
  }
  const util::Ecdf es(stat.summary.response_times);
  const util::Ecdf ed(dyn.summary.response_times);

  util::TextTable table(std::string("Fig 6 | ") + panel.name +
                        " | overestimation +" +
                        util::fmt(panel.overestimation * 100, 0) + "%");
  table.set_header({"ECDF quantile", "static resp(s)", "dynamic resp(s)",
                    "dynamic/static"});
  for (const double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.99}) {
    const double s = es.quantile(q);
    const double d = ed.quantile(q);
    table.add_row({util::fmt(q, 2), util::fmt(s, 0), util::fmt(d, 0),
                   util::fmt(s > 0 ? d / s : 1.0, 3)});
  }
  table.print(std::cout);
  const double med_s = es.quantile(0.5);
  const double med_d = ed.quantile(0.5);
  std::cout << "median reduction: "
            << util::fmt_pct(med_s > 0 ? 1.0 - med_d / med_s : 0.0, 1)
            << "  (paper: up to 69% on underprovisioned at +60%)\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = dmsim::bench::parse_options(argc, argv);
  dmsim::bench::print_scale_banner(opts, "Figure 6 — response time ECDF");
  dmsim::bench::WorkloadCache cache(opts.scale);
  dmsim::bench::Runner runner("fig6_response_time", opts);

  std::vector<Panel> panels;
  for (const double overestimation : {0.0, 0.6}) {
    panels.push_back(enqueue_panel(runner, cache, opts.scale,
                                   "overprovisioned (75% large nodes)", 0.75,
                                   overestimation));
    panels.push_back(enqueue_panel(runner, cache, opts.scale,
                                   "matching (50% large nodes)", 0.50,
                                   overestimation));
    panels.push_back(enqueue_panel(runner, cache, opts.scale,
                                   "underprovisioned (25% large nodes)", 0.25,
                                   overestimation));
  }
  runner.run();
  for (const Panel& panel : panels) print_panel(runner, panel);
  runner.finish();
  return 0;
}
