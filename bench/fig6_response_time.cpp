// Figure 6: empirical cumulative distribution of job response time
// (waiting + running) for over-provisioned, matching and under-provisioned
// systems, at +0% and +60% overestimation, Static vs Dynamic.
//
// "Provisioning" compares the large-node supply against the large-job
// demand: a 50%-large job mix on a 75%-large system is over-provisioned, on
// a 50%-large system matching, and on a 25%-large system under-provisioned.
#include "bench_common.hpp"
#include "util/stats.hpp"

namespace {

using namespace dmsim;

void panel(bench::WorkloadCache& cache, const bench::Scale& scale,
           const char* name, double pct_large_nodes, double overestimation) {
  const auto& w = cache.get(0.5, overestimation);
  harness::SystemConfig sys;
  sys.total_nodes = scale.synth_nodes;
  sys.pct_large_nodes = pct_large_nodes;

  const auto stat =
      bench::run_policy(sys, policy::PolicyKind::Static, w.jobs, w.apps);
  const auto dyn =
      bench::run_policy(sys, policy::PolicyKind::Dynamic, w.jobs, w.apps);
  if (!stat.valid || !dyn.valid) {
    std::cout << "== Fig 6 | " << name << " | +"
              << util::fmt(overestimation * 100, 0)
              << "% == : configuration cannot run the mix\n\n";
    return;
  }
  const util::Ecdf es(stat.summary.response_times);
  const util::Ecdf ed(dyn.summary.response_times);

  util::TextTable table(std::string("Fig 6 | ") + name + " | overestimation +" +
                        util::fmt(overestimation * 100, 0) + "%");
  table.set_header({"ECDF quantile", "static resp(s)", "dynamic resp(s)",
                    "dynamic/static"});
  for (const double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.99}) {
    const double s = es.quantile(q);
    const double d = ed.quantile(q);
    table.add_row({util::fmt(q, 2), util::fmt(s, 0), util::fmt(d, 0),
                   util::fmt(s > 0 ? d / s : 1.0, 3)});
  }
  table.print(std::cout);
  const double med_s = es.quantile(0.5);
  const double med_d = ed.quantile(0.5);
  std::cout << "median reduction: "
            << util::fmt_pct(med_s > 0 ? 1.0 - med_d / med_s : 0.0, 1)
            << "  (paper: up to 69% on underprovisioned at +60%)\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = dmsim::bench::parse_scale(argc, argv);
  dmsim::bench::print_scale_banner(scale, "Figure 6 — response time ECDF");
  dmsim::bench::WorkloadCache cache(scale);
  for (const double overestimation : {0.0, 0.6}) {
    panel(cache, scale, "overprovisioned (75% large nodes)", 0.75,
          overestimation);
    panel(cache, scale, "matching (50% large nodes)", 0.50, overestimation);
    panel(cache, scale, "underprovisioned (25% large nodes)", 0.25,
          overestimation);
  }
  dmsim::bench::print_throughput_tally();
  return 0;
}
