// Figure 4: heat maps of (a) average and (b) maximum per-node memory usage
// versus job size for the synthetic trace. Each cell is the percentage of
// jobs in that (size, memory) bucket; at +0% overestimation the maximum map
// equals the requested-memory map.
#include <array>

#include "bench_common.hpp"
#include "util/stats.hpp"

namespace {

using namespace dmsim;

constexpr std::array<int, 9> kSizeEdges = {1, 2, 3, 5, 9, 17, 33, 65, 129};
constexpr const char* kSizeNames[] = {"[1,1]",   "[2,2]",   "(2,4]",
                                      "(4,8]",   "(8,16]",  "(16,32]",
                                      "(32,64]", "(64,128]"};
constexpr std::array<double, 6> kMemEdgesGb = {0, 12, 24, 48, 96, 128};
constexpr const char* kMemNames[] = {"[0,12)", "[12,24)", "[24,48)", "[48,96)",
                                     "[96,128)"};

int size_bucket(int nodes) {
  for (std::size_t i = 1; i < kSizeEdges.size(); ++i) {
    if (nodes < kSizeEdges[i]) return static_cast<int>(i) - 1;
  }
  return static_cast<int>(kSizeEdges.size()) - 2;
}

int mem_bucket(double mib) {
  const double gb = mib / 1024.0;
  for (std::size_t i = 1; i < kMemEdgesGb.size(); ++i) {
    if (gb < kMemEdgesGb[i]) return static_cast<int>(i) - 1;
  }
  return static_cast<int>(kMemEdgesGb.size()) - 2;
}

void print_heatmap(const char* title, const double (&cells)[5][8],
                   std::size_t total) {
  util::TextTable table(title);
  std::vector<std::string> header = {"GB/node v | nodes >"};
  for (const auto* s : kSizeNames) header.emplace_back(s);
  table.set_header(std::move(header));
  for (int m = 4; m >= 0; --m) {
    std::vector<std::string> row = {kMemNames[m]};
    for (int s = 0; s < 8; ++s) {
      row.push_back(util::fmt(
          cells[m][s] / static_cast<double>(total) * 100.0, 2));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  const auto& scale = opts.scale;
  bench::print_scale_banner(opts, "Figure 4 — memory heatmaps vs job size");

  bench::WorkloadCache cache(scale);
  const auto& w = cache.get(0.5, 0.0);

  double avg_cells[5][8] = {};
  double max_cells[5][8] = {};
  for (const auto& j : w.jobs) {
    const int s = size_bucket(j.num_nodes);
    avg_cells[mem_bucket(j.usage.average())][s] += 1.0;
    max_cells[mem_bucket(static_cast<double>(j.peak_usage()))][s] += 1.0;
  }

  print_heatmap("Fig 4a | average memory usage (% of jobs)", avg_cells,
                w.jobs.size());
  print_heatmap(
      "Fig 4b | maximum memory usage (% of jobs; == requested at +0%)",
      max_cells, w.jobs.size());

  // The property the paper highlights: average usage sits well below peak,
  // leaving room for dynamic reallocation.
  double avg_sum = 0.0;
  double peak_sum = 0.0;
  for (const auto& j : w.jobs) {
    avg_sum += j.usage.average();
    peak_sum += static_cast<double>(j.peak_usage());
  }
  std::cout << "aggregate avg/max usage ratio: " << util::fmt(avg_sum / peak_sum, 3)
            << " (avg is much lower than max => reclaimable gap)\n";
  dmsim::bench::finish_bench("fig4_memory_heatmap", opts);
  return 0;
}
