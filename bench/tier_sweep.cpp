// Tiered-memory sweep: Fig. 5/7-style throughput and response-time curves
// per memory-tier mix. Three topologies share one workload and one memory
// ladder:
//
//   flat      — the paper's single remote pool (no tier table); the
//               degenerate topology every figure bench runs
//   rack-cxl  — two tiers: fast local-ish DRAM plus rack-scale CXL
//   cxl-far   — three tiers: local, rack CXL, and a slow cross-rack pool
//
// Latency/bandwidth points follow the CXL-DMSim measurements (local DRAM
// ~100-150 ns, rack CXL ~300-600 ns, cross-rack ~1-1.5 us); the flat pool
// sits at the reference point (350 ns / 50 GB/s), so its slowdown factors
// are exactly 1 and it reproduces the untiered benches bit for bit.
//
// --json FILE writes BENCH_tiers.json: per-mix curves (normalized
// throughput, mean response, OOM fraction per ladder step and policy) plus
// the standard perf aggregate.
#include <array>

#include "bench_common.hpp"

namespace {

using namespace dmsim;

constexpr std::array kPolicies = {policy::PolicyKind::Static,
                                  policy::PolicyKind::Dynamic};

struct TierMix {
  const char* name;
  std::vector<cluster::MemoryTier> tiers;
  std::vector<double> fractions;
};

[[nodiscard]] std::vector<TierMix> tier_mixes() {
  using cluster::MemoryTier;
  using cluster::TierScope;
  std::vector<TierMix> mixes;
  mixes.push_back({"flat", {}, {}});
  mixes.push_back({"rack-cxl",
                   {MemoryTier{"local", 150.0, 90.0, TierScope::Local},
                    MemoryTier{"rack-cxl", 450.0, 64.0, TierScope::Rack}},
                   {0.6, 0.4}});
  mixes.push_back({"cxl-far",
                   {MemoryTier{"local", 150.0, 90.0, TierScope::Local},
                    MemoryTier{"rack-cxl", 450.0, 64.0, TierScope::Rack},
                    MemoryTier{"far", 1200.0, 40.0, TierScope::CrossRack}},
                   {0.5, 0.3, 0.2}});
  return mixes;
}

struct MixPanel {
  const TierMix* mix = nullptr;
  bench::Runner::Handle reference;
  std::vector<std::array<bench::Runner::Handle, 2>> rows;  // per ladder step
};

}  // namespace

int main(int argc, char** argv) {
  const auto opts = dmsim::bench::parse_options(argc, argv);
  dmsim::bench::print_scale_banner(
      opts, "tier sweep — throughput/response per memory-tier mix");

  // The Runner must not claim the --json path: BENCH_tiers.json carries the
  // per-mix curves below, not the generic per-cell perf report.
  dmsim::bench::Options runner_opts = opts;
  runner_opts.json_path.clear();
  dmsim::bench::Runner runner("tier_sweep", runner_opts);
  dmsim::bench::WorkloadCache cache(opts.scale);

  const auto mixes = tier_mixes();
  const auto& w = cache.get(0.25, 0.0);
  const auto ladder = dmsim::bench::figure_ladder(opts.scale.synth_nodes);

  // Phase 1: enqueue every (mix, ladder step, policy) cell. One shared
  // reference — Static on the flat 100%-memory system — normalizes every
  // mix so the curves are directly comparable.
  std::vector<MixPanel> panels;
  harness::SystemConfig full;
  full.total_nodes = opts.scale.synth_nodes;
  full.pct_large_nodes = 1.0;
  const auto reference =
      runner.add(full, policy::PolicyKind::Static, w.jobs, w.apps, "ref");
  for (const TierMix& mix : mixes) {
    MixPanel panel;
    panel.mix = &mix;
    panel.reference = reference;
    for (const auto& sys : ladder) {
      harness::SystemConfig tiered = sys;
      tiered.tiers = mix.tiers;
      tiered.tier_fractions = mix.fractions;
      std::array<dmsim::bench::Runner::Handle, 2> row;
      for (std::size_t k = 0; k < kPolicies.size(); ++k) {
        row[k] = runner.add(tiered, kPolicies[k], w.jobs, w.apps,
                            std::string(mix.name) + " mem=" +
                                dmsim::bench::mem_label(sys) + " p=" +
                                std::to_string(k));
      }
      panel.rows.push_back(row);
    }
    panels.push_back(std::move(panel));
  }

  // Phase 2: one parallel fan-out.
  runner.run();

  // Phase 3: tables per mix, byte-identical at any --threads setting.
  const auto& ref_cell = runner.get(reference);
  const double ref = ref_cell.valid ? ref_cell.throughput() : 0.0;
  for (const MixPanel& panel : panels) {
    util::TextTable table("Tier sweep | mix " + std::string(panel.mix->name) +
                          " (" + std::to_string(panel.mix->tiers.size()) +
                          " tiers)");
    table.set_header({"mem%", "static", "dynamic", "resp_static_s",
                      "resp_dynamic_s", "oom_jobs%"});
    for (std::size_t s = 0; s < ladder.size(); ++s) {
      std::vector<std::string> row = {dmsim::bench::mem_label(ladder[s])};
      std::array<double, 2> resp = {0.0, 0.0};
      double oom_fraction = 0.0;
      for (std::size_t k = 0; k < kPolicies.size(); ++k) {
        const auto& r = runner.get(panel.rows[s][k]);
        if (!r.valid) {
          row.push_back("-");
          continue;
        }
        row.push_back(util::fmt(ref > 0 ? r.throughput() / ref : 0.0, 3));
        resp[k] = r.summary.response_time.mean();
        if (kPolicies[k] == policy::PolicyKind::Dynamic) {
          oom_fraction = r.summary.oom_job_fraction();
        }
      }
      row.push_back(util::fmt(resp[0], 1));
      row.push_back(util::fmt(resp[1], 1));
      row.push_back(util::fmt_pct(oom_fraction, 2));
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  runner.finish();

  // BENCH_tiers.json: the per-mix curves, machine-readable.
  if (!opts.json_path.empty()) {
    metrics::JsonWriter jw;
    jw.begin_object();
    jw.key("bench").value("tier_sweep");
    jw.key("scale").value(opts.scale.full ? "full" : "reduced");
    jw.key("reference_throughput").value(ref);
    jw.key("mixes").begin_array();
    for (const MixPanel& panel : panels) {
      jw.begin_object();
      jw.key("mix").value(panel.mix->name);
      jw.key("tiers").begin_array();
      for (const auto& t : panel.mix->tiers) {
        jw.begin_object();
        jw.key("name").value(t.name);
        jw.key("latency_ns").value(t.latency_ns);
        jw.key("bandwidth_gbs").value(t.bandwidth_gbs);
        jw.end_object();
      }
      jw.end_array();
      jw.key("cells").begin_array();
      for (std::size_t s = 0; s < ladder.size(); ++s) {
        for (std::size_t k = 0; k < kPolicies.size(); ++k) {
          const auto& r = runner.get(panel.rows[s][k]);
          jw.begin_object();
          jw.key("mem_pct").value(dmsim::bench::mem_label(ladder[s]));
          jw.key("policy").value(std::string(
              policy::to_string(kPolicies[k])));
          jw.key("valid").value(r.valid);
          jw.key("throughput").value(r.valid ? r.throughput() : 0.0);
          jw.key("normalized_throughput")
              .value(r.valid && ref > 0 ? r.throughput() / ref : 0.0);
          jw.key("mean_response_s")
              .value(r.valid ? r.summary.response_time.mean() : 0.0);
          jw.key("oom_job_fraction")
              .value(r.valid ? r.summary.oom_job_fraction() : 0.0);
          jw.end_object();
        }
      }
      jw.end_array();
      jw.end_object();
    }
    jw.end_array();
    jw.end_object();
    std::ofstream out(opts.json_path);
    out << jw.str() << '\n';
    if (!out) {
      std::cerr << "error: failed to write " << opts.json_path << '\n';
      return 1;
    }
  }
  return 0;
}
