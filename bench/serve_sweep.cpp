// Serve sweep: the cost model behind the what-if serving daemon.
//
// The two-level snapshot model (immutable snapshot::Image + per-fork
// overlays) exists so a serve loop can answer many queries against one warm
// image without re-reading or re-validating bytes. This bench pins that
// economics down:
//
//   BM_RestoreFromFile — snapshot::restore_file per query: file read, byte
//                        copy, checksum sweep, full config-fingerprint
//                        recompute (topology + entire workload), decode.
//   BM_ForkFromImage   — Image::materialize_trusted per query: decode plus
//                        one 64-bit fingerprint compare; the image was
//                        opened and validated once.
//
// The fork path must be at least 5x faster (kForkSpeedupFloor); CI runs
// with --enforce-floors so a regression that sneaks validation or copies
// back into the per-fork path fails the build. A what-if fan-out (submit /
// policy / topology overlays racing over a SweepRunner from the shared
// image) exercises the full serve path and its determinism: the results
// table is byte-identical at any --threads setting.
//
// --json FILE writes BENCH_serve.json (timings, speedup, floors, fan-out).
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <numeric>
#include <vector>

#include "bench_common.hpp"
#include "snapshot/image.hpp"

namespace {

using namespace dmsim;

constexpr double kForkSpeedupFloor = 5.0;
constexpr int kTimingIterations = 30;

/// Fresh simulation components, mirroring run_cell's construction: the
/// restore target every timing iteration starts from.
struct FreshComponents {
  cluster::Cluster cluster;
  std::unique_ptr<policy::AllocationPolicy> policy;
  sim::Engine engine;
  std::unique_ptr<sched::Scheduler> scheduler;

  FreshComponents(const harness::SystemConfig& sys, policy::PolicyKind kind,
                  const sched::SchedulerConfig& sched,
                  const trace::Workload& jobs, const slowdown::AppPool& apps)
      : cluster(sys.to_cluster_config()), policy(policy::make_policy(kind)) {
    scheduler = std::make_unique<sched::Scheduler>(engine, cluster, *policy,
                                                   &apps, sched);
    scheduler->submit_workload(jobs);
  }

  [[nodiscard]] snapshot::Components view() {
    return snapshot::Components{&engine, &cluster, scheduler.get(), nullptr};
  }
};

[[nodiscard]] double mean_ms(const std::vector<double>& ms) {
  if (ms.empty()) return 0.0;
  return std::accumulate(ms.begin(), ms.end(), 0.0) /
         static_cast<double>(ms.size());
}

}  // namespace

int main(int argc, char** argv) {
  auto opts = dmsim::bench::parse_options(argc, argv);
  bool enforce_floors = false;
  std::string snapshot_path = "BENCH_serve.snap";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--enforce-floors") == 0) {
      enforce_floors = true;
    } else if (std::strcmp(argv[i], "--snapshot") == 0 && i + 1 < argc) {
      snapshot_path = argv[++i];
    }
  }
  dmsim::bench::print_scale_banner(
      opts, "serve sweep — fork-from-image vs file restore");

  dmsim::bench::WorkloadCache cache(opts.scale);
  const auto& w = cache.get(0.25, 0.4);

  const auto ladder = dmsim::bench::figure_ladder(opts.scale.synth_nodes);
  const harness::SystemConfig sys = ladder[ladder.size() / 2];
  const sched::SchedulerConfig sched;
  constexpr policy::PolicyKind kPolicy = policy::PolicyKind::Dynamic;

  // Phase 1: baseline run (for the makespan), then re-run with a snapshot
  // cut at one third of it — the warm image every fork starts from.
  harness::CellConfig base;
  base.system = sys;
  base.policy = kPolicy;
  base.sched = sched;
  const harness::CellResult baseline = harness::run_cell(base, w.jobs, w.apps);
  if (!baseline.valid) {
    std::cerr << "error: baseline scenario is infeasible\n";
    return 1;
  }
  const Seconds cut = baseline.summary.makespan() / 3.0;
  harness::CellConfig saver = base;
  saver.checkpoint = harness::CheckpointSpec{snapshot_path, 0.0, {cut}, false};
  const harness::CellResult saved = harness::run_cell(saver, w.jobs, w.apps);
  if (!saved.valid || saved.checkpoint.saves == 0) {
    std::cerr << "error: snapshot save run failed\n";
    return 1;
  }

  // Phase 2: the two restore paths, timed over fresh components each
  // iteration (construction excluded — both paths start identically).
  const auto open_start = std::chrono::steady_clock::now();
  const std::shared_ptr<const snapshot::Image> image =
      snapshot::Image::open(snapshot_path);
  const double open_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - open_start)
                             .count();
  const std::uint64_t base_fp = image->fingerprint();

  std::vector<double> restore_ms;
  std::vector<double> fork_ms;
  for (int i = 0; i < kTimingIterations; ++i) {
    {
      FreshComponents fresh(sys, kPolicy, sched, w.jobs, w.apps);
      const auto t0 = std::chrono::steady_clock::now();
      snapshot::restore_file(snapshot_path, fresh.view());
      restore_ms.push_back(std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count());
    }
    {
      FreshComponents fresh(sys, kPolicy, sched, w.jobs, w.apps);
      const auto t0 = std::chrono::steady_clock::now();
      image->materialize_trusted(fresh.view(), base_fp);
      fork_ms.push_back(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count());
    }
  }
  const double restore_mean = mean_ms(restore_ms);
  const double fork_mean = mean_ms(fork_ms);
  const double speedup = fork_mean > 0.0 ? restore_mean / fork_mean : 0.0;
  const bool floors_pass = speedup >= kForkSpeedupFloor;

  // Phase 3: what-if fan-out from the shared image — the serve daemon's
  // inner loop. Every cell holds the same Image pointer; overlays diverge.
  std::vector<harness::CellConfig> whatif;
  const auto forked = [&](const char* label) {
    harness::CellConfig cell = base;
    cell.restore_image = image;
    cell.trusted_fingerprint = base_fp;
    cell.label = label;
    return cell;
  };
  {
    harness::CellConfig cell = forked("baseline");
    whatif.push_back(cell);
  }
  for (const policy::PolicyKind kind :
       {policy::PolicyKind::Baseline, policy::PolicyKind::Static}) {
    harness::CellConfig cell = forked("policy-swap");
    harness::WhatIfOverlay overlay;
    overlay.policy = kind;
    cell.overlay = std::move(overlay);
    whatif.push_back(std::move(cell));
  }
  {
    harness::CellConfig cell = forked("submit");
    harness::WhatIfOverlay overlay;
    trace::JobSpec extra;
    extra.id = JobId{900'000};
    extra.submit_time = cut;
    extra.num_nodes = 4;
    extra.requested_mem = sys.normal_capacity / 2;
    extra.duration = 3600.0;
    extra.walltime = 7200.0;
    extra.usage = trace::UsageTrace::constant(sys.normal_capacity / 2);
    overlay.extra_jobs.push_back(std::move(extra));
    cell.overlay = std::move(overlay);
    whatif.push_back(std::move(cell));
  }
  {
    harness::CellConfig cell = forked("topology");
    harness::WhatIfOverlay overlay;
    cluster::NodeConfig node;
    node.capacity = sys.large_capacity;
    node.cores = sys.cores_per_node;
    node.large = true;
    overlay.extra_nodes.assign(8, node);
    cell.overlay = std::move(overlay);
    whatif.push_back(std::move(cell));
  }

  harness::SweepRunner runner(opts.threads);
  std::vector<std::size_t> handles;
  handles.reserve(whatif.size());
  for (const harness::CellConfig& cell : whatif) {
    handles.push_back(runner.add(cell, w.jobs, w.apps));
  }
  const auto fan_start = std::chrono::steady_clock::now();
  runner.run_all();
  const double fan_seconds = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - fan_start)
                                 .count();

  util::TextTable table("What-if fan-out from one warm image | mem=" +
                        dmsim::bench::mem_label(sys) + "%");
  table.set_header({"cell", "valid", "completed", "throughput", "provisioned GiB"});
  for (std::size_t i = 0; i < whatif.size(); ++i) {
    const harness::CellResult& r = runner.result(handles[i]).cell;
    table.add_row({whatif[i].label, r.valid ? "yes" : "no",
                   std::to_string(r.summary.completed),
                   util::fmt_sci(r.valid ? r.throughput() : 0.0, 4),
                   util::fmt(to_gib(r.provisioned_memory), 0)});
  }
  table.print(std::cout);
  // The fork-equals-resume contract: the unmodified fork must reproduce
  // the checkpointed save run exactly.
  const harness::CellResult& fork_base = runner.result(handles[0]).cell;
  if (fork_base.summary.completed != saved.summary.completed) {
    std::cerr << "error: forked baseline diverged from the resumed run\n";
    return 1;
  }

  std::cout << "# image open (once): " << util::fmt(open_ms, 3) << " ms\n"
            << "# restore_file mean: " << util::fmt(restore_mean, 3)
            << " ms | fork mean: " << util::fmt(fork_mean, 3)
            << " ms | speedup: " << util::fmt(speedup, 1) << "x (floor "
            << util::fmt(kForkSpeedupFloor, 1) << "x)\n";

  if (!opts.json_path.empty()) {
    metrics::JsonWriter jw;
    jw.begin_object();
    jw.key("bench").value("serve_sweep");
    jw.key("scale").value(opts.scale.full ? "full" : "reduced");
    jw.key("snapshot_bytes").value(static_cast<std::uint64_t>(image->size_bytes()));
    jw.key("sections").value(static_cast<std::uint64_t>(image->sections().size()));
    jw.key("image_open_ms").value(open_ms);
    jw.key("BM_RestoreFromFile_ms").value(restore_mean);
    jw.key("BM_ForkFromImage_ms").value(fork_mean);
    jw.key("fork_speedup").value(speedup);
    jw.key("floors").begin_object();
    jw.key("fork_speedup_min").value(kForkSpeedupFloor);
    jw.key("enforced").value(enforce_floors);
    jw.key("pass").value(floors_pass);
    jw.end_object();
    jw.key("whatif").begin_object();
    jw.key("cells").value(static_cast<std::uint64_t>(whatif.size()));
    jw.key("wall_seconds").value(fan_seconds);
    jw.key("threads").value(static_cast<std::uint64_t>(runner.threads()));
    jw.end_object();
    jw.end_object();
    std::ofstream out(opts.json_path);
    out << jw.str() << '\n';
    if (!out) {
      std::cerr << "error: failed to write " << opts.json_path << '\n';
      return 1;
    }
  }

  if (enforce_floors && !floors_pass) {
    std::cerr << "error: fork-from-image speedup " << util::fmt(speedup, 2)
              << "x below the " << util::fmt(kForkSpeedupFloor, 1)
              << "x floor\n";
    return 1;
  }
  return 0;
}
